"""Bootstrap ensembles: random forest and bagging."""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTree


class _BootstrapEnsemble:
    """Common machinery: bootstrap-resampled trees with majority vote."""

    def __init__(self, n_estimators: int, max_depth: int,
                 max_features: float | None, seed: int):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.rng = np.random.default_rng(seed)
        self._trees: list[DecisionTree] = []

    def fit(self, X, y):
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        n = X.shape[0]
        self._trees = []
        for e in range(self.n_estimators):
            idx = self.rng.integers(0, n, size=n)
            tree = DecisionTree(max_depth=self.max_depth,
                                max_features=self.max_features,
                                seed=int(self.rng.integers(1 << 31)))
            tree.fit(X[idx], y[idx])
            self._trees.append(tree)
        return self

    def predict(self, X) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("fit() before predict()")
        votes = np.zeros(np.asarray(X).shape[0])
        for tree in self._trees:
            votes += tree.predict(X)
        return (votes * 2 >= len(self._trees)).astype(np.int64)


class RandomForest(_BootstrapEnsemble):
    """Bootstrap trees with random sqrt-fraction feature subsets."""

    def __init__(self, n_estimators: int = 20, max_depth: int = 8,
                 seed: int = 0):
        super().__init__(n_estimators, max_depth, max_features=0.4,
                         seed=seed)


class Bagging(_BootstrapEnsemble):
    """Bootstrap trees over the full feature set."""

    def __init__(self, n_estimators: int = 10, max_depth: int = 8,
                 seed: int = 0):
        super().__init__(n_estimators, max_depth, max_features=None,
                         seed=seed)
