"""Bernoulli naive Bayes over binarised features."""

from __future__ import annotations

import numpy as np


class BernoulliNB:
    """Naive Bayes with Bernoulli likelihoods.

    Features are binarised at ``threshold`` (one-hot columns pass
    through unchanged; standardized numerics become sign indicators).
    Laplace smoothing ``alpha`` avoids zero likelihoods.
    """

    def __init__(self, alpha: float = 1.0, threshold: float = 0.0,
                 seed: int = 0):
        self.alpha = alpha
        self.threshold = threshold
        self._log_prior: np.ndarray | None = None
        self._log_p: np.ndarray | None = None      # log P(x=1 | class)
        self._log_q: np.ndarray | None = None      # log P(x=0 | class)

    def _binarize(self, X: np.ndarray) -> np.ndarray:
        return (np.asarray(X, dtype=np.float64) > self.threshold)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BernoulliNB":
        B = self._binarize(X)
        y = np.asarray(y, dtype=np.int64)
        n = y.shape[0]
        counts = np.array([(y == 0).sum(), (y == 1).sum()], dtype=np.float64)
        self._log_prior = np.log((counts + self.alpha)
                                 / (n + 2 * self.alpha))
        ones = np.stack([B[y == 0].sum(axis=0), B[y == 1].sum(axis=0)])
        p = (ones + self.alpha) / (counts[:, None] + 2 * self.alpha)
        self._log_p = np.log(p)
        self._log_q = np.log1p(-p)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._log_prior is None:
            raise RuntimeError("fit() before predict()")
        B = self._binarize(X).astype(np.float64)
        scores = (self._log_prior[None, :]
                  + B @ self._log_p.T + (1.0 - B) @ self._log_q.T)
        return np.argmax(scores, axis=1).astype(np.int64)
