"""DP-VAE (Chen et al. 2018) — a variational auto-encoder trained with
DP-SGD, sampled from the latent prior.

The encoder maps the mixed-encoded row to a Gaussian posterior
``(mu, logvar)`` over a small latent space; the decoder reconstructs
the one-hot/scaled representation.  Training clips per-example
gradients and adds Gaussian noise via :class:`~repro.privacy.DPSGD`;
the noise scale is calibrated with the RDP accountant so the whole run
spends exactly (epsilon, delta).  Synthesis decodes
``z ~ N(0, I)`` draws — i.i.d. tuples, no constraint awareness.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.encoding import MixedEncoder
from repro.nn.layers import Linear, ReLU
from repro.nn.losses import cross_entropy_loss
from repro.privacy.dpsgd import DPSGD
from repro.privacy.rdp import calibrate_sgm_sigma
from repro.schema.table import Table


class DPVae:
    """Differentially private VAE synthesizer.

    Parameters
    ----------
    epsilon, delta:
        Total privacy budget for training.
    latent, hidden:
        Latent and hidden widths.
    iterations, batch:
        DP-SGD steps and expected Poisson batch size.
    lr, clip_norm, seed:
        The usual knobs.
    """

    def __init__(self, epsilon: float, delta: float = 1e-6,
                 latent: int = 8, hidden: int = 48, iterations: int = 150,
                 batch: int = 32, lr: float = 0.05, clip_norm: float = 1.0,
                 seed: int = 0):
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.latent = latent
        self.hidden = hidden
        self.iterations = iterations
        self.batch = batch
        self.lr = lr
        self.clip_norm = clip_norm
        self.seed = seed

    # ------------------------------------------------------------------
    def _build(self, dim: int, rng) -> None:
        self.enc1 = Linear(dim, self.hidden, rng, name="vae.enc1")
        self.enc_act = ReLU()
        self.enc2 = Linear(self.hidden, 2 * self.latent, rng,
                           name="vae.enc2")
        self.dec1 = Linear(self.latent, self.hidden, rng, name="vae.dec1")
        self.dec_act = ReLU()
        self.dec2 = Linear(self.hidden, dim, rng, name="vae.dec2")
        self.params = (self.enc1.parameters() + self.enc2.parameters()
                       + self.dec1.parameters() + self.dec2.parameters())

    def _decode_forward(self, z: np.ndarray) -> np.ndarray:
        return self.dec2.forward(self.dec_act.forward(self.dec1.forward(z)))

    def _recon_loss_grad(self, recon, X, encoder: MixedEncoder):
        """Per-block reconstruction loss gradient (CE for one-hots,
        squared error for scaled numerics)."""
        grad = np.zeros_like(recon)
        for name, kind, lo, hi in encoder.blocks:
            if kind == "cat":
                targets = np.argmax(X[:, lo:hi], axis=1)
                _, g = cross_entropy_loss(recon[:, lo:hi], targets)
                grad[:, lo:hi] = g
            else:
                grad[:, lo] = 2.0 * (recon[:, lo] - X[:, lo])
        return grad

    # ------------------------------------------------------------------
    def fit_sample(self, table: Table, n: int | None = None) -> Table:
        """Train privately on ``table``, then sample from the prior."""
        rng = np.random.default_rng(self.seed)
        n_out = table.n if n is None else int(n)
        encoder = MixedEncoder(table.relation)
        X = encoder.encode(table)
        n_rows = X.shape[0]
        self._build(encoder.dim, rng)

        q = min(self.batch / n_rows, 1.0)
        sigma = calibrate_sgm_sigma(self.epsilon, self.delta, q,
                                    self.iterations)
        optimizer = DPSGD(self.params, lr=self.lr, clip_norm=self.clip_norm,
                          noise_scale=sigma, expected_batch=self.batch,
                          rng=rng)

        for _ in range(self.iterations):
            idx = np.nonzero(rng.random(n_rows) < q)[0]
            optimizer.zero_grad()
            if idx.size:
                xb = X[idx]
                h = self.enc2.forward(
                    self.enc_act.forward(self.enc1.forward(xb)))
                mu, logvar = h[:, :self.latent], h[:, self.latent:]
                logvar = np.clip(logvar, -8.0, 8.0)
                noise = rng.normal(size=mu.shape)
                z = mu + np.exp(0.5 * logvar) * noise
                recon = self._decode_forward(z)
                g_recon = self._recon_loss_grad(recon, xb, encoder)
                g = self.dec2.backward(g_recon, per_sample=True)
                g = self.dec_act.backward(g, per_sample=True)
                g_z = self.dec1.backward(g, per_sample=True)
                # Reparameterisation + KL gradients.
                g_mu = g_z + mu
                g_logvar = (g_z * noise * 0.5 * np.exp(0.5 * logvar)
                            + 0.5 * (np.exp(logvar) - 1.0))
                g_h = np.concatenate([g_mu, g_logvar], axis=1)
                g = self.enc2.backward(g_h, per_sample=True)
                g = self.enc_act.backward(g, per_sample=True)
                self.enc1.backward(g, per_sample=True)
            optimizer.step()

        z = rng.normal(size=(n_out, self.latent))
        recon = self._decode_forward(z)
        return encoder.decode(recon, rng)
