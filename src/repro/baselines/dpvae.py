"""DP-VAE (Chen et al. 2018) — a variational auto-encoder trained with
DP-SGD, sampled from the latent prior.

The encoder maps the mixed-encoded row to a Gaussian posterior
``(mu, logvar)`` over a small latent space; the decoder reconstructs
the one-hot/scaled representation.  Training clips per-example
gradients and adds Gaussian noise via :class:`~repro.privacy.DPSGD`;
the noise scale is calibrated with the RDP accountant so the whole run
spends exactly (epsilon, delta) — recorded as one ledger entry in
:meth:`DPVae.fit`.  The fitted artifact keeps only the decoder weights:
:meth:`FittedDPVae.sample` decodes ``z ~ N(0, I)`` draws — i.i.d.
tuples, no constraint awareness.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from repro.baselines.encoding import MixedEncoder
from repro.nn.layers import Linear, ReLU
from repro.nn.losses import cross_entropy_loss
from repro.privacy.dpsgd import DPSGD
from repro.privacy.rdp import calibrate_sgm_sigma
from repro.schema.table import Table
from repro.synth.ledger import BudgetLedger
from repro.synth.protocol import FittedSynthesizer, Synthesizer


class FittedDPVae(FittedSynthesizer):
    """The released decoder: two affine maps from latent to mixed codes."""

    method = "dpvae"

    def __init__(self, relation, weights, latent: int, default_n: int,
                 seed: int, ledger=None, rng_state=None):
        super().__init__(relation, default_n, seed, ledger=ledger,
                         rng_state=rng_state)
        #: ``(W1, b1, W2, b2)`` of the decoder.
        self.weights = tuple(weights)
        self.latent = int(latent)
        self.encoder = MixedEncoder(relation)

    def _decode_forward(self, z: np.ndarray) -> np.ndarray:
        w1, b1, w2, b2 = self.weights
        return np.maximum(z @ w1 + b1, 0.0) @ w2 + b2

    def _sample(self, n_out: int, rng: np.random.Generator) -> Table:
        z = rng.normal(size=(n_out, self.latent))
        return self.encoder.decode(self._decode_forward(z), rng)

    # -- persistence ---------------------------------------------------
    def _model_state(self) -> dict:
        return {"weights": list(self.weights), "latent": self.latent}

    @classmethod
    def _from_model_state(cls, state, relation, dcs, common):
        return cls(relation, state["weights"], state["latent"],
                   common["default_n"], common["seed"])


class DPVae(Synthesizer):
    """Differentially private VAE synthesizer.

    Parameters
    ----------
    epsilon, delta:
        Total privacy budget for training.
    latent, hidden:
        Latent and hidden widths.
    iterations, batch:
        DP-SGD steps and expected Poisson batch size.
    lr, clip_norm, seed:
        The usual knobs.
    """

    name = "dpvae"
    fitted_cls = FittedDPVae

    def __init__(self, epsilon: float, delta: float = 1e-6,
                 latent: int = 8, hidden: int = 48, iterations: int = 150,
                 batch: int = 32, lr: float = 0.05, clip_norm: float = 1.0,
                 seed: int = 0):
        super().__init__(epsilon, delta=delta, seed=seed)
        self.latent = latent
        self.hidden = hidden
        self.iterations = iterations
        self.batch = batch
        self.lr = lr
        self.clip_norm = clip_norm

    # ------------------------------------------------------------------
    def _build(self, dim: int, rng) -> None:
        self.enc1 = Linear(dim, self.hidden, rng, name="vae.enc1")
        self.enc_act = ReLU()
        self.enc2 = Linear(self.hidden, 2 * self.latent, rng,
                           name="vae.enc2")
        self.dec1 = Linear(self.latent, self.hidden, rng, name="vae.dec1")
        self.dec_act = ReLU()
        self.dec2 = Linear(self.hidden, dim, rng, name="vae.dec2")
        self.params = (self.enc1.parameters() + self.enc2.parameters()
                       + self.dec1.parameters() + self.dec2.parameters())

    def _decode_forward(self, z: np.ndarray) -> np.ndarray:
        return self.dec2.forward(self.dec_act.forward(self.dec1.forward(z)))

    def _recon_loss_grad(self, recon, X, encoder: MixedEncoder):
        """Per-block reconstruction loss gradient (CE for one-hots,
        squared error for scaled numerics)."""
        grad = np.zeros_like(recon)
        for name, kind, lo, hi in encoder.blocks:
            if kind == "cat":
                targets = np.argmax(X[:, lo:hi], axis=1)
                _, g = cross_entropy_loss(recon[:, lo:hi], targets)
                grad[:, lo:hi] = g
            else:
                grad[:, lo] = 2.0 * (recon[:, lo] - X[:, lo])
        return grad

    # ------------------------------------------------------------------
    def fit(self, table: Table, *, trace=None) -> FittedDPVae:
        """Train privately on ``table`` (spends the whole budget)."""
        rng = np.random.default_rng(self.seed)
        ledger = BudgetLedger()

        def _phase(name):
            return trace.phase(name) if trace is not None else nullcontext()

        with _phase("encode"):
            encoder = MixedEncoder(table.relation)
            X = encoder.encode(table)
            n_rows = X.shape[0]
            self._build(encoder.dim, rng)

        with _phase("train"):
            q = min(self.batch / n_rows, 1.0)
            ledger.spend(f"gaussian:dp-sgd x{self.iterations} "
                         f"(rdp-calibrated, q={q:.3g})",
                         self.epsilon, self.delta)
            sigma = calibrate_sgm_sigma(self.epsilon, self.delta, q,
                                        self.iterations)
            optimizer = DPSGD(self.params, lr=self.lr,
                              clip_norm=self.clip_norm, noise_scale=sigma,
                              expected_batch=self.batch, rng=rng)

            for _ in range(self.iterations):
                idx = np.nonzero(rng.random(n_rows) < q)[0]
                optimizer.zero_grad()
                if idx.size:
                    xb = X[idx]
                    h = self.enc2.forward(
                        self.enc_act.forward(self.enc1.forward(xb)))
                    mu, logvar = h[:, :self.latent], h[:, self.latent:]
                    logvar = np.clip(logvar, -8.0, 8.0)
                    noise = rng.normal(size=mu.shape)
                    z = mu + np.exp(0.5 * logvar) * noise
                    recon = self._decode_forward(z)
                    g_recon = self._recon_loss_grad(recon, xb, encoder)
                    g = self.dec2.backward(g_recon, per_sample=True)
                    g = self.dec_act.backward(g, per_sample=True)
                    g_z = self.dec1.backward(g, per_sample=True)
                    # Reparameterisation + KL gradients.
                    g_mu = g_z + mu
                    g_logvar = (g_z * noise * 0.5 * np.exp(0.5 * logvar)
                                + 0.5 * (np.exp(logvar) - 1.0))
                    g_h = np.concatenate([g_mu, g_logvar], axis=1)
                    g = self.enc2.backward(g_h, per_sample=True)
                    g = self.enc_act.backward(g, per_sample=True)
                    self.enc1.backward(g, per_sample=True)
                optimizer.step()

        weights = (self.dec1.weight.value, self.dec1.bias.value,
                   self.dec2.weight.value, self.dec2.bias.value)
        return FittedDPVae(
            table.relation, weights, self.latent, table.n, self.seed,
            ledger=ledger, rng_state=rng.bit_generator.state)
