"""HoloClean-style violation repair (the "cleaned" variant of Figure 1).

Example 1 of the paper repairs the baselines' DC violations with a
state-of-the-art cleaning method and shows the repaired data becomes
*less* useful.  This module reproduces that post-processing:

* FD-shaped DCs — majority-vote repair: every determinant group gets
  its most frequent dependent value;
* conditional-order DCs — rank repair: within each equality group the
  target attribute is re-sorted to be concordant with its partner
  (a minimal-change monotone repair);
* unary DCs — violating cells of the constrained attribute are
  redrawn from the non-violating empirical distribution;
* anything else — a bounded greedy pass that rewrites one cell of each
  violating pair to the attribute's modal value.

Repair is a pure post-processing step: it costs no additional privacy
budget but (as Figure 1 shows) damages the learned correlations.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.violations import count_violations
from repro.schema.table import Table


def _repair_fd(table: Table, determinant, dependent: str) -> None:
    """Majority-vote the dependent attribute within determinant groups."""
    keys = np.stack([table.column(a).astype(np.float64)
                     for a in determinant], axis=1)
    dep = table.column(dependent)
    _, inverse = np.unique(keys, axis=0, return_inverse=True)
    for group in range(inverse.max() + 1):
        rows = np.nonzero(inverse == group)[0]
        if rows.size < 2:
            continue
        values, counts = np.unique(dep[rows], return_counts=True)
        dep[rows] = values[np.argmax(counts)]


def _repair_order(table: Table, eq_attrs, greater_attr: str,
                  less_attr: str) -> None:
    """Within each equality group, sort one order attribute so the pair
    is concordant (a minimal rank repair)."""
    if eq_attrs:
        keys = np.stack([table.column(a).astype(np.float64)
                         for a in eq_attrs], axis=1)
        _, inverse = np.unique(keys, axis=0, return_inverse=True)
    else:
        inverse = np.zeros(table.n, dtype=np.int64)
    g_col = table.column(greater_attr)
    l_col = table.column(less_attr)
    for group in range(inverse.max() + 1):
        rows = np.nonzero(inverse == group)[0]
        if rows.size < 2:
            continue
        order = np.argsort(l_col[rows], kind="stable")
        sorted_g = np.sort(g_col[rows])
        g_col[rows[order]] = sorted_g


def _repair_unary(table: Table, dc, rng: np.random.Generator) -> None:
    """Redraw cells of violating tuples from the clean distribution."""
    from repro.constraints.violations import _unary_mask, _columns
    cols = _columns(table, dc.attributes)
    mask = _unary_mask(dc, cols)
    if not mask.any() or mask.all():
        return
    target = sorted(dc.attributes)[0]
    clean_pool = table.column(target)[~mask]
    table.column(target)[mask] = rng.choice(clean_pool, size=int(mask.sum()))


def repair_violations(table: Table, dcs, seed: int = 0,
                      max_passes: int = 3) -> Table:
    """Return a repaired copy of ``table`` (input is unchanged)."""
    rng = np.random.default_rng(seed)
    repaired = table.copy()
    for _ in range(max_passes):
        dirty = False
        for dc in dcs:
            if count_violations(dc, repaired) == 0:
                continue
            dirty = True
            fd = dc.as_fd()
            order = dc.as_conditional_order()
            if fd is not None:
                _repair_fd(repaired, fd[0], fd[1])
            elif order is not None:
                _repair_order(repaired, order[0], order[1], order[2])
            elif dc.is_unary:
                _repair_unary(repaired, dc, rng)
            else:
                _greedy_repair(repaired, dc, rng)
        if not dirty:
            break
    return repaired


def _greedy_repair(table: Table, dc, rng: np.random.Generator,
                   budget: int = 2000) -> None:
    """Last-resort repair: rewrite one cell per violating pair to the
    attribute's modal value, up to ``budget`` rewrites."""
    from repro.constraints.violations import candidate_violation_counts
    target = sorted(dc.attributes)[0]
    col = table.column(target)
    values, counts = np.unique(col, return_counts=True)
    modal = values[np.argmax(counts)]
    cols = {a: table.column(a) for a in dc.attributes}
    rewrites = 0
    for i in range(table.n):
        if rewrites >= budget:
            break
        row = {a: cols[a][i] for a in dc.attributes}
        prefix = {a: cols[a][:i] for a in dc.attributes}
        vio = candidate_violation_counts(dc, None, None, row, prefix)[0]
        if vio > 0:
            col[i] = modal
            rewrites += 1
