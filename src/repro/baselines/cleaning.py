"""HoloClean-style violation repair (the "cleaned" variant of Figure 1).

Example 1 of the paper repairs the baselines' DC violations with a
state-of-the-art cleaning method and shows the repaired data becomes
*less* useful.  This module reproduces that post-processing:

* FD-shaped DCs — majority-vote repair: every determinant group gets
  its most frequent dependent value;
* conditional-order DCs — rank repair: within each equality group the
  target attribute is re-sorted to be concordant with its partner
  (a minimal-change monotone repair);
* unary DCs — violating cells of the constrained attribute are
  redrawn from the non-violating empirical distribution (or, when
  *every* tuple violates, from the satisfying part of the attribute's
  full domain);
* anything else — a bounded greedy pass that rewrites one cell of each
  violating pair to the attribute's modal value.

Convergence: FD-shaped DCs sharing a dependent attribute are repaired
*jointly* (union-find over their determinant groups, one majority vote
per merged component), and units are ordered topologically over the FD
graph (determinants before dependents) — so a chain ``A -> B, B -> C``
is fixed left-to-right and a later repair never re-breaks an earlier
one.  The pass loop then iterates to a fixpoint (violation-free, or no
further progress) instead of a fixed pass budget.

Violation accounting runs on the incremental indexes of
:mod:`repro.constraints.index`: each DC's index is built once and
updated cell-by-cell as repairs land, so a pass costs O(cells changed)
bookkeeping instead of a fresh O(n^2) ``count_violations`` per DC.

Repair is a pure post-processing step: it costs no additional privacy
budget but (as Figure 1 shows) damages the learned correlations.

Two entry points:

* :func:`repair_violations` — the raw post-processor (repairs any
  table against any DC set);
* :class:`Cleaning` — the "baseline + cleaning" *synthesizer* of
  Figure 1: fit an inner constraint-oblivious backend (``privbayes``
  by default, any registry name works), then repair each draw against
  the dataset's DCs.  The repair rides in the ledger as a zero-cost
  entry, so the backend's total spend is exactly the inner fit's.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.index import build_index
from repro.constraints.violations import _columns, _unary_mask, group_inverse
from repro.schema.table import Table
from repro.synth.ledger import BudgetLedger
from repro.synth.protocol import FittedSynthesizer, Synthesizer, \
    apply_common

#: Hard stop for the fixpoint loop; reached only by pathological DC
#: interactions (the loop normally exits on violation-free or stalled).
_MAX_FIXPOINT_PASSES = 64


def _union_find_roots(n: int, group_labels) -> np.ndarray:
    """Root labels after merging rows that share any per-FD group."""
    parent = np.arange(n)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for inverse in group_labels:
        order = np.argsort(inverse, kind="stable")
        labels = inverse[order]
        for k in range(1, n):
            if labels[k] == labels[k - 1]:
                a, b = find(int(order[k])), find(int(order[k - 1]))
                if a != b:
                    parent[a] = b
    return np.fromiter((find(i) for i in range(n)), dtype=np.int64,
                       count=n)


def _repair_fd_set(table: Table, fd_shapes) -> None:
    """Jointly repair every FD sharing one dependent attribute.

    Rows that share a determinant key under *any* of the FDs must agree
    on the dependent, so the repair groups are the connected components
    of the per-FD group overlap (union-find), majority-voted once.
    Repairing each FD separately can oscillate forever when two FDs
    determine the same attribute (each vote re-breaking the other).
    """
    n = table.n
    if n == 0:
        return
    dependent = fd_shapes[0][1]
    group_labels = [
        group_inverse([table.column(a) for a in determinant])[0]
        for determinant, _ in fd_shapes]
    roots = _union_find_roots(n, group_labels)
    dep = table.column(dependent)
    _, inverse, counts = np.unique(roots, return_inverse=True,
                                   return_counts=True)
    for group in np.flatnonzero(counts >= 2):
        rows = np.nonzero(inverse == group)[0]
        values, value_counts = np.unique(dep[rows], return_counts=True)
        dep[rows] = values[np.argmax(value_counts)]


def _repair_order(table: Table, eq_attrs, greater_attr: str,
                  less_attr: str) -> None:
    """Within each equality group, sort one order attribute so the pair
    is concordant (a minimal rank repair)."""
    if eq_attrs:
        inverse, counts = group_inverse(
            [table.column(a) for a in eq_attrs])
    else:
        inverse = np.zeros(table.n, dtype=np.int64)
        counts = np.array([table.n])
    g_col = table.column(greater_attr)
    l_col = table.column(less_attr)
    for group in np.flatnonzero(counts >= 2):
        rows = np.nonzero(inverse == group)[0]
        order = np.argsort(l_col[rows], kind="stable")
        sorted_g = np.sort(g_col[rows])
        g_col[rows[order]] = sorted_g


def _repair_unary(table: Table, dc, rng: np.random.Generator) -> None:
    """Redraw cells of violating tuples from the clean distribution.

    When every tuple violates there is no clean empirical pool to draw
    from; fall back to the attribute's full domain, keeping only values
    that actually satisfy the DC for the row in question.
    """
    cols = _columns(table, dc.attributes)
    mask = _unary_mask(dc, cols)
    if not mask.any():
        return
    target = sorted(dc.attributes)[0]
    col = table.column(target)
    if not mask.all():
        clean_pool = col[~mask]
        col[mask] = rng.choice(clean_pool, size=int(mask.sum()))
        return
    _redraw_from_domain(table, dc, target, rng)


def _domain_candidates(attr, max_grid: int = 257) -> np.ndarray:
    """A finite candidate set covering an attribute's domain."""
    domain = attr.domain
    if attr.is_categorical:
        return np.arange(domain.size, dtype=np.int64)
    if domain.integer and domain.width < max_grid:
        return np.arange(domain.low, domain.high + 1)
    grid = np.linspace(domain.low, domain.high, max_grid)
    return np.unique(domain.clip(grid))


def _redraw_from_domain(table: Table, dc, target: str,
                        rng: np.random.Generator) -> None:
    """Rewrite every row's target cell to a random domain value that
    satisfies the (unary) DC; rows with no satisfying value are left."""
    candidates = _domain_candidates(table.relation[target])
    col = table.column(target)
    n = table.n
    feasible = np.zeros((candidates.size, n), dtype=bool)
    for k, value in enumerate(candidates):
        sub = {a: (np.full(n, value, dtype=col.dtype) if a == target
                   else table.column(a))
               for a in dc.attributes}
        feasible[k] = ~_unary_mask(dc, sub)
    scores = rng.random(feasible.shape)
    scores[~feasible] = -1.0
    pick = np.argmax(scores, axis=0)
    fixable = feasible.any(axis=0)
    col[fixable] = candidates[pick[fixable]]


def _repair_target(dc) -> str:
    """The column a repair pass for ``dc`` rewrites."""
    fd = dc.as_fd()
    if fd is not None:
        return fd[1]
    order = dc.as_conditional_order()
    if order is not None:
        return order[1]
    return sorted(dc.attributes)[0]


def _repair_plan(dcs) -> list[list]:
    """Group and order DCs into convergent repair units.

    Every FD-shaped DC with the same dependent attribute lands in one
    unit (they must be majority-voted jointly — see
    :func:`_repair_fd_set`).  FD units come first, sorted by the
    topological depth of their dependent in the FD graph (edges
    determinant -> dependent, longest-path depth; attributes on cycles
    sort after the acyclic part): repairing ``A -> B`` before
    ``B -> C`` means the second repair reads already-clean ``B`` groups
    and cannot re-break the first.  Non-FD DCs follow as singleton
    units in input order.
    """
    fd_units: dict[str, list] = {}
    for dc in dcs:
        fd = dc.as_fd()
        if fd is not None:
            fd_units.setdefault(fd[1], []).append(dc)

    edges: dict[str, set[str]] = {}
    indegree: dict[str, int] = {}
    for dc in dcs:
        fd = dc.as_fd()
        if fd is None:
            continue
        determinant, dependent = fd
        for det in determinant:
            indegree.setdefault(det, 0)
            if dependent not in edges.setdefault(det, set()):
                edges[det].add(dependent)
                indegree[dependent] = indegree.get(dependent, 0) + 1
    depth = {a: 0 for a in indegree}
    ready = [a for a, deg in indegree.items() if deg == 0]
    remaining = dict(indegree)
    while ready:
        node = ready.pop()
        for succ in edges.get(node, ()):
            depth[succ] = max(depth[succ], depth[node] + 1)
            remaining[succ] -= 1
            if remaining[succ] == 0:
                ready.append(succ)
    cyclic_depth = 1 + max(depth.values(), default=0)

    def unit_depth(dependent: str) -> int:
        if remaining.get(dependent, 0) == 0:
            return depth[dependent]
        return cyclic_depth

    plan = [unit for _, unit in
            sorted(fd_units.items(), key=lambda kv: unit_depth(kv[0]))]
    plan.extend([dc] for dc in dcs if dc.as_fd() is None)
    return plan


def repair_violations(table: Table, dcs, seed: int = 0,
                      max_passes: int | None = None) -> Table:
    """Return a repaired copy of ``table`` (input is unchanged).

    Iterates repair passes to a fixpoint: the loop exits when every DC
    is violation-free, when a full pass stops making progress (the
    residual is unrepairable by these local strategies), or after
    ``max_passes`` passes if given.  The returned instance is the
    *best* state the loop visited: a pass over a cyclic FD graph can
    overshoot (trade one violation for several), and that damage must
    not escape just because it happened on the final pass.
    """
    rng = np.random.default_rng(seed)
    repaired = table.copy()
    all_dcs = list(dcs)
    plan = _repair_plan(all_dcs)
    indexes = {}
    for dc in all_dcs:
        index = build_index(dc)
        index.build(repaired.columns, repaired.n)
        indexes[dc.name] = index

    cap = _MAX_FIXPOINT_PASSES if max_passes is None else max_passes
    previous_total = None
    best_total = None
    best = None
    for _ in range(cap):
        total = sum(index.total() for index in indexes.values())
        if total == 0:
            return repaired
        if best_total is None or total < best_total:
            best_total = total
            best = repaired.copy()
        if previous_total is not None and total >= previous_total:
            break  # stalled: no strategy is reducing the residual
        previous_total = total
        for unit in plan:
            if all(indexes[dc.name].total() == 0 for dc in unit):
                continue
            _repair_unit(repaired, unit, rng, all_dcs, indexes)
    final_total = sum(index.total() for index in indexes.values())
    if best_total is not None and final_total > best_total:
        return best
    return repaired


def _repair_unit(repaired: Table, unit, rng, all_dcs, indexes) -> None:
    """Run one repair pass for a unit and sync every affected index."""
    dc = unit[0]
    target = _repair_target(dc)
    before = repaired.column(target).copy()
    fd = dc.as_fd()
    order = dc.as_conditional_order()
    if fd is not None:
        _repair_fd_set(repaired, [d.as_fd() for d in unit])
    elif order is not None:
        _repair_order(repaired, order[0], order[1], order[2])
    elif dc.is_unary:
        _repair_unary(repaired, dc, rng)
    else:
        _greedy_repair(repaired, dc, rng)
    changed = np.flatnonzero(before != repaired.column(target))
    if changed.size == 0:
        return
    for other in all_dcs:
        if target not in other.attributes:
            continue
        index = indexes[other.name]
        for i in changed:
            index.rewrite_cell(repaired.columns, int(i), target,
                               before[i])


def _greedy_repair(table: Table, dc, rng: np.random.Generator,
                   budget: int = 2000) -> None:
    """Last-resort repair: rewrite one cell per violating pair to the
    attribute's modal value, up to ``budget`` rewrites."""
    from repro.constraints.violations import candidate_violation_counts
    target = sorted(dc.attributes)[0]
    col = table.column(target)
    values, counts = np.unique(col, return_counts=True)
    modal = values[np.argmax(counts)]
    cols = {a: table.column(a) for a in dc.attributes}
    rewrites = 0
    for i in range(table.n):
        if rewrites >= budget:
            break
        row = {a: cols[a][i] for a in dc.attributes}
        prefix = {a: cols[a][:i] for a in dc.attributes}
        vio = candidate_violation_counts(dc, None, None, row, prefix)[0]
        if vio > 0:
            col[i] = modal
            rewrites += 1


class FittedCleaning(FittedSynthesizer):
    """An inner fitted artifact plus the DC set to repair against."""

    method = "cleaning"

    def __init__(self, inner: FittedSynthesizer, dcs):
        super().__init__(inner.relation, inner.default_n, inner.seed)
        self.inner = inner
        self.dcs = list(dcs)
        self.ledger = BudgetLedger()
        self.ledger.extend(inner.ledger)
        self.ledger.spend("post-processing:violation-repair", 0.0, 0.0)

    def sample(self, n=None, seed=None, *, trace=None) -> Table:
        """Inner draw, then :func:`repair_violations` on the result.

        The repair seed follows the draw seed (``self.seed`` for the
        default draw), so the whole pipeline stays a deterministic
        function of ``(fitted state, n, seed)``.
        """
        table = self.inner.sample(n=n, seed=seed, trace=trace)
        repair_seed = self.seed if seed is None else int(seed)
        return repair_violations(table, self.dcs, seed=repair_seed)

    # -- persistence ---------------------------------------------------
    def _model_state(self) -> dict:
        return {
            "inner_method": self.inner.method,
            "inner_common": self.inner._common_state(),
            "inner_model": self.inner._model_state(),
        }

    @classmethod
    def _from_model_state(cls, state, relation, dcs, common):
        from repro.synth.registry import resolve_backend
        inner_cls = resolve_backend(state["inner_method"]).fitted_class()
        inner = inner_cls._from_model_state(state["inner_model"],
                                            relation, (),
                                            state["inner_common"])
        apply_common(inner, state["inner_common"])
        return cls(inner, dcs)


class Cleaning(Synthesizer):
    """"Baseline + cleaning" synthesizer (Figure 1's cleaned variant).

    Parameters
    ----------
    epsilon, delta, seed:
        Passed through to the inner backend's fit.
    dcs:
        The denial constraints each draw is repaired against.
    inner:
        Registry name of the wrapped constraint-oblivious backend.
    **inner_kwargs:
        Extra constructor knobs for the inner backend.
    """

    name = "cleaning"
    uses_dcs = True
    fitted_cls = FittedCleaning

    def __init__(self, epsilon: float, delta: float = 1e-6, seed: int = 0,
                 dcs=(), inner: str = "privbayes", **inner_kwargs):
        super().__init__(epsilon, delta=delta, seed=seed)
        self.dcs = list(dcs)
        self.inner_name = str(inner)
        self.inner_kwargs = dict(inner_kwargs)

    def fit(self, table: Table, *, trace=None) -> FittedCleaning:
        from repro.synth.registry import make_synthesizer
        if self.inner_name == self.name:
            raise ValueError("cleaning cannot wrap itself")
        inner = make_synthesizer(self.inner_name, self.epsilon,
                                 delta=self.delta, seed=self.seed,
                                 **self.inner_kwargs)
        return FittedCleaning(inner.fit(table, trace=trace), self.dcs)
