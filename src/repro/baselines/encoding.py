"""Mixed-type vector encoding shared by the GAN/VAE baselines.

PATE-GAN and DP-VAE "require the input dataset to be encoded into
numeric vectors" (§7.1).  The encoder maps each categorical attribute
to a one-hot block and each numerical attribute to a min-max-scaled
scalar in [0, 1]; decoding samples the categorical blocks (softmax or
argmax) and rescales the numerics.
"""

from __future__ import annotations

import numpy as np

from repro.schema.table import Table


class MixedEncoder:
    """Bidirectional table <-> [0,1]^d matrix encoding."""

    def __init__(self, relation):
        self.relation = relation
        self.blocks: list[tuple[str, str, int, int]] = []  # name,kind,lo,hi
        offset = 0
        for attr in relation:
            if attr.is_categorical:
                width = attr.domain.size
                self.blocks.append((attr.name, "cat", offset,
                                    offset + width))
            else:
                width = 1
                self.blocks.append((attr.name, "num", offset,
                                    offset + width))
            offset += width
        self.dim = offset

    def encode(self, table: Table) -> np.ndarray:
        out = np.zeros((table.n, self.dim))
        for name, kind, lo, hi in self.blocks:
            col = table.column(name)
            if kind == "cat":
                out[np.arange(table.n), lo + col.astype(np.int64)] = 1.0
            else:
                dom = self.relation[name].domain
                width = max(dom.high - dom.low, 1e-12)
                out[:, lo] = (col - dom.low) / width
        return out

    def decode(self, matrix: np.ndarray, rng: np.random.Generator,
               stochastic: bool = True) -> Table:
        """Matrix -> table; categorical blocks are sampled (or argmaxed)
        from their softmax, numerics rescaled and clipped."""
        n = matrix.shape[0]
        cols = {}
        for name, kind, lo, hi in self.blocks:
            block = matrix[:, lo:hi]
            if kind == "cat":
                logits = block - block.max(axis=1, keepdims=True)
                if stochastic:
                    gumbel = -np.log(-np.log(rng.random(block.shape)
                                             + 1e-300) + 1e-300)
                    cols[name] = np.argmax(logits + gumbel, axis=1)
                else:
                    cols[name] = np.argmax(logits, axis=1)
            else:
                dom = self.relation[name].domain
                width = dom.high - dom.low
                cols[name] = dom.clip(dom.low + block[:, 0] * width)
        return Table(self.relation, cols, validate=False)
