"""PrivBayes (Zhang et al., SIGMOD 2014) — Bayesian-network synthesis.

Pipeline:

1. discretise numerical attributes into ``q`` equi-width bins;
2. spend half the budget learning a network structure greedily: each
   step picks the (attribute, parent-set) pair with the highest
   *noisy* mutual information (Laplace noise standing in for the
   exponential mechanism, as in the authors' implementation);
3. spend the other half on Laplace-noised conditional count tables;
4. sample tuples ancestrally and de-quantise.

Steps 1–3 are the budget-consuming :meth:`PrivBayes.fit` (both halves
recorded in the artifact's :class:`~repro.synth.ledger.BudgetLedger`);
step 4 is :meth:`FittedPrivBayes.sample`, free seeded post-processing.
Tuples are sampled i.i.d. — the method has no notion of cross-tuple
constraints, which is what Table 2 measures.
"""

from __future__ import annotations

import itertools
from contextlib import nullcontext

import numpy as np

from repro.schema.quantize import dequantize_table, quantize_relation, \
    quantize_table
from repro.schema.table import Table
from repro.synth.ledger import BudgetLedger
from repro.synth.protocol import FittedSynthesizer, Synthesizer


def _mutual_information(x: np.ndarray, y_key: np.ndarray, x_size: int,
                        y_size: int) -> float:
    """MI between a discrete column and a (flattened) parent key."""
    joint = np.zeros((x_size, y_size))
    np.add.at(joint, (x, y_key), 1.0)
    joint /= joint.sum()
    px = joint.sum(axis=1, keepdims=True)
    py = joint.sum(axis=0, keepdims=True)
    mask = joint > 0
    return float(np.sum(joint[mask]
                        * np.log(joint[mask] / (px @ py)[mask])))


def _flatten_key(columns: dict, relation, parents,
                 n: int) -> tuple[np.ndarray, int]:
    """Mixed-radix flatten of parent columns into one key column."""
    key = np.zeros(n, dtype=np.int64)
    size = 1
    for p in parents:
        psize = relation[p].domain.size
        key = key * psize + np.asarray(columns[p], dtype=np.int64)
        size *= psize
    return key, size


class FittedPrivBayes(FittedSynthesizer):
    """A learned network: structure + noisy CPTs over the binned schema.

    Drawing is ancestral sampling along the fitted structure followed
    by §4.2 de-quantisation — no private data, no budget.
    """

    method = "privbayes"

    def __init__(self, relation, disc_relation, quantizers,
                 structure, cpts, quant_bins: int, default_n: int,
                 seed: int, ledger=None, rng_state=None):
        super().__init__(relation, default_n, seed, ledger=ledger,
                         rng_state=rng_state)
        self.disc_relation = disc_relation
        self.quantizers = quantizers
        #: Ancestral order: ``[(attr, (parent, ...)), ...]``.
        self.structure = structure
        #: ``attr -> (key_size, x_size)`` conditional probability table.
        self.cpts = cpts
        self.quant_bins = int(quant_bins)

    def _sample(self, n_out: int, rng: np.random.Generator) -> Table:
        cols: dict[str, np.ndarray] = {}
        for attr, parents in self.structure:
            probs = self.cpts[attr]
            if not parents:
                cols[attr] = rng.choice(probs.shape[1], size=n_out,
                                        p=probs[0] / probs[0].sum())
                continue
            key, _ = _flatten_key(cols, self.disc_relation, parents, n_out)
            gumbel = -np.log(-np.log(rng.random((n_out, probs.shape[1]))
                                     + 1e-300) + 1e-300)
            cols[attr] = np.argmax(np.log(np.maximum(probs[key], 1e-300))
                                   + gumbel, axis=1)
        synthetic = Table(self.disc_relation,
                          {a: np.asarray(cols[a], dtype=np.int64)
                           for a in self.disc_relation.names},
                          validate=False)
        return dequantize_table(synthetic, self.relation, self.quantizers,
                                rng)

    # -- persistence ---------------------------------------------------
    def _model_state(self) -> dict:
        return {
            "quant_bins": self.quant_bins,
            "structure": [[attr, list(parents)]
                          for attr, parents in self.structure],
            "cpts": {attr: probs for attr, probs in self.cpts.items()},
        }

    @classmethod
    def _from_model_state(cls, state, relation, dcs, common):
        q = int(state["quant_bins"])
        disc_relation, quantizers = quantize_relation(relation, q)
        structure = [(attr, tuple(parents))
                     for attr, parents in state["structure"]]
        return cls(relation, disc_relation, quantizers, structure,
                   dict(state["cpts"]), q, common["default_n"],
                   common["seed"])


class PrivBayes(Synthesizer):
    """Differentially private Bayesian-network synthesizer.

    Parameters
    ----------
    epsilon:
        Pure-DP budget (PrivBayes uses only Laplace noise; delta is
        accepted for interface uniformity and ignored).
    max_parents:
        Degree bound theta of the network.
    quant_bins:
        Bins for numerical attributes.
    seed:
        Randomness.
    """

    name = "privbayes"
    fitted_cls = FittedPrivBayes

    def __init__(self, epsilon: float, delta: float = 0.0,
                 max_parents: int = 2, quant_bins: int = 12, seed: int = 0):
        super().__init__(epsilon, delta=delta, seed=seed)
        self.max_parents = int(max_parents)
        self.quant_bins = int(quant_bins)

    # ------------------------------------------------------------------
    def _greedy_structure(self, disc: Table, eps_struct: float,
                          rng) -> list[tuple[str, tuple]]:
        """Greedy (attribute, parents) ordering by noisy MI."""
        relation = disc.relation
        names = list(relation.names)
        n = disc.n
        structure: list[tuple[str, tuple]] = []
        chosen: list[str] = []
        remaining = list(names)
        # First attribute: smallest domain (no parents).
        first = min(remaining, key=lambda a: relation[a].domain.size)
        structure.append((first, ()))
        chosen.append(first)
        remaining.remove(first)
        steps = max(len(remaining), 1)
        # MI sensitivity under replacement is O(log n / n); the authors
        # use this scale for their noisy selection.
        sensitivity = 2.0 * np.log(max(n, 2)) / max(n, 2)
        eps_step = eps_struct / steps
        columns = {a: disc.column(a) for a in names}
        while remaining:
            best, best_score = None, -np.inf
            for attr in remaining:
                x = disc.column(attr).astype(np.int64)
                x_size = relation[attr].domain.size
                max_p = min(self.max_parents, len(chosen))
                for r in range(1, max_p + 1):
                    for parents in itertools.combinations(chosen[-4:], r):
                        key, key_size = _flatten_key(columns, relation,
                                                     parents, n)
                        mi = _mutual_information(x, key, x_size, key_size)
                        noisy = mi + rng.laplace(
                            0.0, sensitivity / max(eps_step, 1e-12))
                        if noisy > best_score:
                            best_score = noisy
                            best = (attr, parents)
            attr, parents = best
            structure.append((attr, parents))
            chosen.append(attr)
            remaining.remove(attr)
        return structure

    # ------------------------------------------------------------------
    def fit(self, table: Table, *, trace=None) -> FittedPrivBayes:
        """Learn the network on ``table`` (spends the whole budget)."""
        rng = np.random.default_rng(self.seed)
        ledger = BudgetLedger()

        def _phase(name):
            return trace.phase(name) if trace is not None else nullcontext()

        with _phase("quantize"):
            disc, quantizers = quantize_table(table, self.quant_bins)
        with _phase("structure"):
            eps_struct = ledger.spend("laplace:noisy-mi-structure",
                                      self.epsilon / 2.0)
            structure = self._greedy_structure(disc, eps_struct, rng)

        with _phase("cpt"):
            eps_param = ledger.spend("laplace:cpt-counts",
                                     self.epsilon / 2.0)
            eps_each = eps_param / max(len(structure), 1)
            columns = {a: disc.column(a) for a in disc.relation.names}
            cpts = {}
            for attr, parents in structure:
                x = disc.column(attr).astype(np.int64)
                x_size = disc.relation[attr].domain.size
                key, key_size = _flatten_key(columns, disc.relation,
                                             parents, disc.n)
                counts = np.zeros((key_size, x_size))
                np.add.at(counts, (key, x), 1.0)
                counts += rng.laplace(0.0, 2.0 / max(eps_each, 1e-12),
                                      size=counts.shape)
                counts = np.maximum(counts, 0.0)
                row_sums = counts.sum(axis=1, keepdims=True)
                uniform = np.full_like(counts, 1.0 / x_size)
                cpts[attr] = np.where(
                    row_sums > 0,
                    counts / np.maximum(row_sums, 1e-12), uniform)

        return FittedPrivBayes(
            table.relation, disc.relation, quantizers, structure, cpts,
            self.quant_bins, table.n, self.seed, ledger=ledger,
            rng_state=rng.bit_generator.state)
