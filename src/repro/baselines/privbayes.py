"""PrivBayes (Zhang et al., SIGMOD 2014) — Bayesian-network synthesis.

Pipeline:

1. discretise numerical attributes into ``q`` equi-width bins;
2. spend half the budget learning a network structure greedily: each
   step picks the (attribute, parent-set) pair with the highest
   *noisy* mutual information (Laplace noise standing in for the
   exponential mechanism, as in the authors' implementation);
3. spend the other half on Laplace-noised conditional count tables;
4. sample tuples ancestrally and de-quantise.

Tuples are sampled i.i.d. — the method has no notion of cross-tuple
constraints, which is what Table 2 measures.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.schema.quantize import dequantize_table, quantize_table
from repro.schema.table import Table


def _mutual_information(x: np.ndarray, y_key: np.ndarray, x_size: int,
                        y_size: int) -> float:
    """MI between a discrete column and a (flattened) parent key."""
    joint = np.zeros((x_size, y_size))
    np.add.at(joint, (x, y_key), 1.0)
    joint /= joint.sum()
    px = joint.sum(axis=1, keepdims=True)
    py = joint.sum(axis=0, keepdims=True)
    mask = joint > 0
    return float(np.sum(joint[mask]
                        * np.log(joint[mask] / (px @ py)[mask])))


class PrivBayes:
    """Differentially private Bayesian-network synthesizer.

    Parameters
    ----------
    epsilon:
        Pure-DP budget (PrivBayes uses only Laplace noise; delta is
        accepted for interface uniformity and ignored).
    max_parents:
        Degree bound theta of the network.
    quant_bins:
        Bins for numerical attributes.
    seed:
        Randomness.
    """

    def __init__(self, epsilon: float, delta: float = 0.0,
                 max_parents: int = 2, quant_bins: int = 12, seed: int = 0):
        self.epsilon = float(epsilon)
        self.max_parents = int(max_parents)
        self.quant_bins = int(quant_bins)
        self.seed = seed

    # ------------------------------------------------------------------
    def _greedy_structure(self, disc: Table, rng) -> list[tuple[str, tuple]]:
        """Greedy (attribute, parents) ordering by noisy MI."""
        relation = disc.relation
        names = list(relation.names)
        n = disc.n
        eps_struct = self.epsilon / 2.0
        structure: list[tuple[str, tuple]] = []
        chosen: list[str] = []
        remaining = list(names)
        # First attribute: smallest domain (no parents).
        first = min(remaining, key=lambda a: relation[a].domain.size)
        structure.append((first, ()))
        chosen.append(first)
        remaining.remove(first)
        steps = max(len(remaining), 1)
        # MI sensitivity under replacement is O(log n / n); the authors
        # use this scale for their noisy selection.
        sensitivity = 2.0 * np.log(max(n, 2)) / max(n, 2)
        eps_step = eps_struct / steps
        while remaining:
            best, best_score = None, -np.inf
            for attr in remaining:
                x = disc.column(attr).astype(np.int64)
                x_size = relation[attr].domain.size
                max_p = min(self.max_parents, len(chosen))
                for r in range(1, max_p + 1):
                    for parents in itertools.combinations(chosen[-4:], r):
                        key, key_size = self._flatten(disc, parents)
                        mi = _mutual_information(x, key, x_size, key_size)
                        noisy = mi + rng.laplace(
                            0.0, sensitivity / max(eps_step, 1e-12))
                        if noisy > best_score:
                            best_score = noisy
                            best = (attr, parents)
            attr, parents = best
            structure.append((attr, parents))
            chosen.append(attr)
            remaining.remove(attr)
        return structure

    def _flatten(self, disc: Table, parents) -> tuple[np.ndarray, int]:
        """Mixed-radix flatten of parent columns into one key column."""
        key = np.zeros(disc.n, dtype=np.int64)
        size = 1
        for p in parents:
            psize = disc.relation[p].domain.size
            key = key * psize + disc.column(p).astype(np.int64)
            size *= psize
        return key, size

    # ------------------------------------------------------------------
    def fit_sample(self, table: Table, n: int | None = None) -> Table:
        """Learn the network on ``table`` and sample a synthetic one."""
        rng = np.random.default_rng(self.seed)
        n_out = table.n if n is None else int(n)
        disc, quantizers = quantize_table(table, self.quant_bins)
        structure = self._greedy_structure(disc, rng)

        eps_param = self.epsilon / 2.0
        eps_each = eps_param / max(len(structure), 1)
        cpts = {}
        for attr, parents in structure:
            x = disc.column(attr).astype(np.int64)
            x_size = disc.relation[attr].domain.size
            key, key_size = self._flatten(disc, parents)
            counts = np.zeros((key_size, x_size))
            np.add.at(counts, (key, x), 1.0)
            counts += rng.laplace(0.0, 2.0 / max(eps_each, 1e-12),
                                  size=counts.shape)
            counts = np.maximum(counts, 0.0)
            row_sums = counts.sum(axis=1, keepdims=True)
            uniform = np.full_like(counts, 1.0 / x_size)
            probs = np.where(row_sums > 0, counts / np.maximum(row_sums,
                                                               1e-12),
                             uniform)
            cpts[attr] = (parents, probs)

        cols = {}
        for attr, parents in structure:
            _, probs = cpts[attr]
            if not parents:
                cols[attr] = rng.choice(probs.shape[1], size=n_out,
                                        p=probs[0] / probs[0].sum())
                continue
            key = np.zeros(n_out, dtype=np.int64)
            for p in parents:
                psize = disc.relation[p].domain.size
                key = key * psize + cols[p]
            gumbel = -np.log(-np.log(rng.random((n_out, probs.shape[1]))
                                     + 1e-300) + 1e-300)
            cols[attr] = np.argmax(np.log(np.maximum(probs[key], 1e-300))
                                   + gumbel, axis=1)
        synthetic = Table(disc.relation,
                          {a: np.asarray(cols[a], dtype=np.int64)
                           for a in disc.relation.names}, validate=False)
        return dequantize_table(synthetic, table.relation, quantizers, rng)
