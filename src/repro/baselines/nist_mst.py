"""The NIST-challenge winning approach (McKenna et al. 2019).

"Applies probabilistic inference over marginals" (§7.1): measure a set
of noisy marginals, fit a graphical model consistent with them, and
sample.  Following the paper's configuration, the measured set is every
1-way marginal plus ``n_pairs`` randomly chosen attribute pairs.

Implementation outline:

1. :meth:`NistMst.fit` discretises, then releases each marginal with
   the Gaussian mechanism (noise calibrated by the RDP accountant
   across all measurements; the whole ``(epsilon, delta)`` recorded as
   one ledger spend);
2. still in ``fit``: estimate pairwise mutual information from the
   noisy 2-ways, keep a maximum spanning forest (networkx) over the
   measured pairs, and freeze the ancestral traversal as an explicit
   sampling *plan* — so the fitted artifact is plain marginal tables
   plus an op list, and drawing needs no graph library;
3. :meth:`FittedNistMst.sample` walks the plan — roots from their
   1-way marginals, children from the conditional encoded by the noisy
   pair marginal; unpaired attributes sample independently.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np
import networkx as nx

from repro.privacy.rdp import calibrate_sgm_sigma
from repro.schema.quantize import dequantize_table, quantize_relation, \
    quantize_table
from repro.schema.table import Table
from repro.synth.ledger import BudgetLedger
from repro.synth.protocol import FittedSynthesizer, Synthesizer


class FittedNistMst(FittedSynthesizer):
    """Measured marginals plus the frozen ancestral sampling plan.

    ``plan`` ops are ``("root", attr)`` — draw from the 1-way marginal
    — and ``("cond", child, parent)`` — draw from the pair marginal's
    conditional given the already-drawn parent column.
    """

    method = "nist_mst"

    def __init__(self, relation, disc_relation, quantizers, one_way,
                 two_way, plan, quant_bins: int, default_n: int,
                 seed: int, ledger=None, rng_state=None):
        super().__init__(relation, default_n, seed, ledger=ledger,
                         rng_state=rng_state)
        self.disc_relation = disc_relation
        self.quantizers = quantizers
        self.one_way = one_way
        #: ``(a, b) -> noisy joint counts`` for the measured pairs.
        self.two_way = two_way
        self.plan = plan
        self.quant_bins = int(quant_bins)

    def _sample_marginal(self, attr: str, n_out: int, rng) -> np.ndarray:
        probs = self.one_way[attr]
        total = probs.sum()
        size = probs.shape[0]
        p = probs / total if total > 0 else np.full(size, 1.0 / size)
        return rng.choice(size, size=n_out, p=p)

    def _conditional(self, child: str, parent: str,
                     parent_col: np.ndarray, rng) -> np.ndarray:
        key = (parent, child) if (parent, child) in self.two_way \
            else (child, parent)
        counts = self.two_way[key]
        if key[0] == child:
            counts = counts.T  # rows indexed by parent
        row = counts[parent_col]
        row_sums = row.sum(axis=1, keepdims=True)
        size = counts.shape[1]
        uniform = np.full_like(row, 1.0 / size)
        probs = np.where(row_sums > 0,
                         row / np.maximum(row_sums, 1e-12), uniform)
        gumbel = -np.log(-np.log(rng.random(probs.shape) + 1e-300)
                         + 1e-300)
        return np.argmax(np.log(np.maximum(probs, 1e-300)) + gumbel,
                         axis=1)

    def _sample(self, n_out: int, rng: np.random.Generator) -> Table:
        cols: dict[str, np.ndarray] = {}
        for op in self.plan:
            if op[0] == "root":
                cols[op[1]] = self._sample_marginal(op[1], n_out, rng)
            else:
                _, child, parent = op
                cols[child] = self._conditional(child, parent,
                                                cols[parent], rng)
        synthetic = Table(self.disc_relation,
                          {a: np.asarray(cols[a], dtype=np.int64)
                           for a in self.disc_relation.names},
                          validate=False)
        return dequantize_table(synthetic, self.relation, self.quantizers,
                                rng)

    # -- persistence ---------------------------------------------------
    def _model_state(self) -> dict:
        pairs = list(self.two_way)
        return {
            "quant_bins": self.quant_bins,
            "one_way": dict(self.one_way),
            "pairs": [[a, b] for a, b in pairs],
            "pair_tables": [self.two_way[p] for p in pairs],
            "plan": [list(op) for op in self.plan],
        }

    @classmethod
    def _from_model_state(cls, state, relation, dcs, common):
        q = int(state["quant_bins"])
        disc_relation, quantizers = quantize_relation(relation, q)
        two_way = {(a, b): table for (a, b), table
                   in zip(state["pairs"], state["pair_tables"])}
        plan = [tuple(op) for op in state["plan"]]
        return cls(relation, disc_relation, quantizers,
                   dict(state["one_way"]), two_way, plan, q,
                   common["default_n"], common["seed"])


class NistMst(Synthesizer):
    """Marginals + spanning-tree graphical-model synthesizer.

    Parameters
    ----------
    epsilon, delta:
        Budget over all marginal measurements.
    n_pairs:
        Number of random attribute pairs measured (the paper uses 10).
    quant_bins, seed:
        Discretisation and randomness.
    """

    name = "nist_mst"
    fitted_cls = FittedNistMst

    def __init__(self, epsilon: float, delta: float = 1e-6,
                 n_pairs: int = 10, quant_bins: int = 12, seed: int = 0):
        super().__init__(epsilon, delta=delta, seed=seed)
        self.n_pairs = n_pairs
        self.quant_bins = quant_bins

    def fit(self, table: Table, *, trace=None) -> FittedNistMst:
        rng = np.random.default_rng(self.seed)
        ledger = BudgetLedger()
        names = None

        def _phase(name):
            return trace.phase(name) if trace is not None else nullcontext()

        with _phase("quantize"):
            disc, quantizers = quantize_table(table, self.quant_bins)
            names = disc.relation.names
            k = len(names)

        with _phase("measure"):
            pairs = []
            if k >= 2:
                all_pairs = [(names[i], names[j]) for i in range(k)
                             for j in range(i + 1, k)]
                take = min(self.n_pairs, len(all_pairs))
                idx = rng.choice(len(all_pairs), size=take, replace=False)
                pairs = [all_pairs[i] for i in idx]

            # Calibrate one Gaussian scale across all measurements
            # (sensitivity sqrt(2) per histogram under replacement); the
            # accountant sizes sigma for the whole budget, recorded as
            # one composed spend.
            n_measurements = k + len(pairs)
            ledger.spend(f"gaussian:marginals x{n_measurements} "
                         f"(rdp-calibrated)", self.epsilon, self.delta)
            sigma = calibrate_sgm_sigma(self.epsilon, self.delta, 1.0,
                                        n_measurements)

            def noisy(counts):
                noisy_counts = counts + rng.normal(
                    0.0, np.sqrt(2.0) * sigma, size=counts.shape)
                return np.maximum(noisy_counts, 0.0)

            one_way = {}
            for a in names:
                size = disc.relation[a].domain.size
                counts = np.bincount(disc.column(a).astype(np.int64),
                                     minlength=size).astype(float)
                one_way[a] = noisy(counts)

            two_way = {}
            graph = nx.Graph()
            graph.add_nodes_from(names)
            for a, b in pairs:
                sa = disc.relation[a].domain.size
                sb = disc.relation[b].domain.size
                counts = np.zeros((sa, sb))
                np.add.at(counts, (disc.column(a).astype(np.int64),
                                   disc.column(b).astype(np.int64)), 1.0)
                counts = noisy(counts)
                two_way[(a, b)] = counts
                joint = counts / max(counts.sum(), 1e-12)
                pa = joint.sum(axis=1, keepdims=True)
                pb = joint.sum(axis=0, keepdims=True)
                mask = joint > 0
                mi = float(np.sum(joint[mask]
                                  * np.log(joint[mask]
                                           / np.maximum((pa @ pb)[mask],
                                                        1e-300))))
                graph.add_edge(a, b, weight=mi)

        with _phase("infer"):
            forest = nx.maximum_spanning_tree(graph) if graph.edges \
                else graph
            # Freeze the ancestral traversal: the plan's op order is
            # exactly the order the fused sampler visited attributes,
            # so a plan-driven draw replays the same rng sequence.
            plan: list[tuple] = []
            planned: set[str] = set()
            for component in nx.connected_components(forest):
                component = sorted(component)
                root = component[0]
                plan.append(("root", root))
                planned.add(root)
                for parent, child in nx.bfs_edges(
                        forest.subgraph(component), root):
                    plan.append(("cond", child, parent))
                    planned.add(child)
            for a in names:
                if a not in planned:
                    plan.append(("root", a))

        return FittedNistMst(
            table.relation, disc.relation, quantizers, one_way, two_way,
            plan, self.quant_bins, table.n, self.seed, ledger=ledger,
            rng_state=rng.bit_generator.state)
