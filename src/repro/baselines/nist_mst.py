"""The NIST-challenge winning approach (McKenna et al. 2019).

"Applies probabilistic inference over marginals" (§7.1): measure a set
of noisy marginals, fit a graphical model consistent with them, and
sample.  Following the paper's configuration, the measured set is every
1-way marginal plus ``n_pairs`` randomly chosen attribute pairs.

Implementation outline:

1. discretise, then release each marginal with the Gaussian mechanism
   (noise calibrated by the RDP accountant across all measurements);
2. estimate pairwise mutual information from the noisy 2-ways and keep
   a maximum spanning forest (networkx) over the measured pairs;
3. sample ancestrally along each tree — roots from their 1-way
   marginals, children from the conditional encoded by the noisy pair
   marginal; unpaired attributes sample independently.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.privacy.rdp import calibrate_sgm_sigma
from repro.schema.quantize import dequantize_table, quantize_table
from repro.schema.table import Table


class NistMst:
    """Marginals + spanning-tree graphical-model synthesizer.

    Parameters
    ----------
    epsilon, delta:
        Budget over all marginal measurements.
    n_pairs:
        Number of random attribute pairs measured (the paper uses 10).
    quant_bins, seed:
        Discretisation and randomness.
    """

    def __init__(self, epsilon: float, delta: float = 1e-6,
                 n_pairs: int = 10, quant_bins: int = 12, seed: int = 0):
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.n_pairs = n_pairs
        self.quant_bins = quant_bins
        self.seed = seed

    def fit_sample(self, table: Table, n: int | None = None) -> Table:
        rng = np.random.default_rng(self.seed)
        n_out = table.n if n is None else int(n)
        disc, quantizers = quantize_table(table, self.quant_bins)
        names = disc.relation.names
        k = len(names)

        pairs = []
        if k >= 2:
            all_pairs = [(names[i], names[j]) for i in range(k)
                         for j in range(i + 1, k)]
            take = min(self.n_pairs, len(all_pairs))
            idx = rng.choice(len(all_pairs), size=take, replace=False)
            pairs = [all_pairs[i] for i in idx]

        # Calibrate one Gaussian scale across all measurements
        # (sensitivity sqrt(2) per histogram under replacement).
        n_measurements = k + len(pairs)
        sigma = calibrate_sgm_sigma(self.epsilon, self.delta, 1.0,
                                    n_measurements)

        def noisy(counts):
            noisy_counts = counts + rng.normal(
                0.0, np.sqrt(2.0) * sigma, size=counts.shape)
            return np.maximum(noisy_counts, 0.0)

        one_way = {}
        for a in names:
            size = disc.relation[a].domain.size
            counts = np.bincount(disc.column(a).astype(np.int64),
                                 minlength=size).astype(float)
            one_way[a] = noisy(counts)

        two_way = {}
        graph = nx.Graph()
        graph.add_nodes_from(names)
        for a, b in pairs:
            sa = disc.relation[a].domain.size
            sb = disc.relation[b].domain.size
            counts = np.zeros((sa, sb))
            np.add.at(counts, (disc.column(a).astype(np.int64),
                               disc.column(b).astype(np.int64)), 1.0)
            counts = noisy(counts)
            two_way[(a, b)] = counts
            joint = counts / max(counts.sum(), 1e-12)
            pa = joint.sum(axis=1, keepdims=True)
            pb = joint.sum(axis=0, keepdims=True)
            mask = joint > 0
            mi = float(np.sum(joint[mask]
                              * np.log(joint[mask]
                                       / np.maximum((pa @ pb)[mask],
                                                    1e-300))))
            graph.add_edge(a, b, weight=mi)

        forest = nx.maximum_spanning_tree(graph) if graph.edges else graph

        cols: dict[str, np.ndarray] = {}

        def sample_marginal(a):
            probs = one_way[a]
            total = probs.sum()
            size = probs.shape[0]
            p = probs / total if total > 0 else np.full(size, 1.0 / size)
            return rng.choice(size, size=n_out, p=p)

        def conditional(child, parent, parent_col):
            key = (parent, child) if (parent, child) in two_way \
                else (child, parent)
            counts = two_way[key]
            if key[0] == child:
                counts = counts.T  # rows indexed by parent
            row = counts[parent_col]
            row_sums = row.sum(axis=1, keepdims=True)
            size = counts.shape[1]
            uniform = np.full_like(row, 1.0 / size)
            probs = np.where(row_sums > 0,
                             row / np.maximum(row_sums, 1e-12), uniform)
            gumbel = -np.log(-np.log(rng.random(probs.shape) + 1e-300)
                             + 1e-300)
            return np.argmax(np.log(np.maximum(probs, 1e-300)) + gumbel,
                             axis=1)

        for component in nx.connected_components(forest):
            component = sorted(component)
            root = component[0]
            cols[root] = sample_marginal(root)
            for parent, child in nx.bfs_edges(forest.subgraph(component),
                                              root):
                cols[child] = conditional(child, parent, cols[parent])
        for a in names:
            if a not in cols:
                cols[a] = sample_marginal(a)

        synthetic = Table(disc.relation,
                          {a: np.asarray(cols[a], dtype=np.int64)
                           for a in names}, validate=False)
        return dequantize_table(synthetic, table.relation, quantizers, rng)
