"""Baseline DP synthesizers and the violation-repair post-processor.

The paper compares Kamino against four state-of-the-art DP data
synthesizers (§7.1); all are reimplemented here from their original
papers, at reduced scale:

* :class:`PrivBayes` — Bayesian-network synthesis (Zhang et al. 2014):
  noisy mutual-information structure search plus Laplace-noised
  conditional distributions;
* :class:`PateGan` — a GAN whose discriminator is distilled from a
  PATE teacher ensemble with noisy vote aggregation (Jordon et al.
  2019);
* :class:`DPVae` — a variational auto-encoder trained with DP-SGD,
  sampled from the latent prior (Chen et al. 2018);
* :class:`NistMst` — the NIST-challenge winner's measure+infer+sample
  pipeline (McKenna et al. 2019): Gaussian-noised 1-way and selected
  2-way marginals fitted with a spanning-tree graphical model;
* :func:`repair_violations` — the HoloClean-style cleaning step used in
  Figure 1 to show that post-hoc repair hurts utility — and
  :class:`Cleaning`, the same repair packaged as a synthesizer
  wrapping an inner backend.

Every synthesizer implements the staged protocol of
:mod:`repro.synth`: ``fit(table) -> fitted`` runs the budget-consuming
phases once (each mechanism's spend recorded in the artifact's
ledger); ``fitted.sample(n, seed)`` draws tables as free seeded
post-processing; ``fit_sample(table, n)`` remains as the fused
convenience, bit-identical to the historical one-shot implementations.
All the baselines i.i.d.-sample tuples — which is precisely why they
fail the DC-preservation metric (Table 2); ``cleaning`` repairs the
violations after the fact, at the utility cost Figure 1 measures.
"""

from repro.baselines.privbayes import PrivBayes
from repro.baselines.pategan import PateGan
from repro.baselines.dpvae import DPVae
from repro.baselines.nist_mst import NistMst
from repro.baselines.cleaning import Cleaning, repair_violations

__all__ = ["Cleaning", "DPVae", "NistMst", "PateGan", "PrivBayes",
           "repair_violations"]
