"""PATE-GAN (Jordon, Yoon & van der Schaar, ICLR 2019).

A GAN in which the discriminator's privacy comes from PATE distillation:

* ``k`` *teacher* discriminators each train on a disjoint shard of the
  real data (against current generator output);
* a *student* discriminator trains only on generator samples, labeled
  by the teachers' noisy majority vote — the single point where private
  data influences the released model;
* the generator trains against the student.

The vote aggregation uses Gaussian noise accounted with the RDP
accountant (one vote's sensitivity is 1, since a record affects exactly
one teacher); the calibration spends the whole (epsilon, delta) budget
over the planned number of vote queries, recorded as one ledger entry.
As in the paper's evaluation (§7.1), the generator is conditioned on
the dataset's smallest-domain attribute, whose histogram is taken from
the true data.

All of the above happens in :meth:`PateGan.fit`; the fitted artifact is
just the generator's weights plus the label histogram, and
:meth:`FittedPateGan.sample` is a forward pass through them.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from repro.baselines.encoding import MixedEncoder
from repro.nn.functional import sigmoid
from repro.nn.layers import Linear, ReLU
from repro.nn.losses import bce_with_logits_loss
from repro.nn.optim import Adam
from repro.privacy.rdp import calibrate_sgm_sigma
from repro.schema.table import Table
from repro.synth.ledger import BudgetLedger
from repro.synth.protocol import FittedSynthesizer, Synthesizer


class _MLP:
    """Tiny two-layer net with backward-to-input support."""

    def __init__(self, d_in, hidden, d_out, rng, name):
        self.l1 = Linear(d_in, hidden, rng, name=f"{name}.l1")
        self.act = ReLU()
        self.l2 = Linear(hidden, d_out, rng, name=f"{name}.l2")

    def parameters(self):
        return self.l1.parameters() + self.l2.parameters()

    def forward(self, x):
        return self.l2.forward(self.act.forward(self.l1.forward(x)))

    def backward(self, grad):
        g = self.l2.backward(grad)
        g = self.act.backward(g)
        return self.l1.backward(g)


class FittedPateGan(FittedSynthesizer):
    """The released generator: two affine maps plus the label histogram.

    The mixed encoder is a pure function of the schema and is rebuilt
    at construction; drawing replays the fused sampler's rng sequence —
    latent normal, label choice, generator forward, §7.1 decode.
    """

    method = "pategan"

    def __init__(self, relation, weights, latent: int, label_size: int,
                 label_hist, default_n: int, seed: int, ledger=None,
                 rng_state=None):
        super().__init__(relation, default_n, seed, ledger=ledger,
                         rng_state=rng_state)
        #: ``(W1, b1, W2, b2)`` of the generator MLP.
        self.weights = tuple(weights)
        self.latent = int(latent)
        self.label_size = int(label_size)
        self.label_hist = label_hist
        self.encoder = MixedEncoder(relation)

    def _generator_forward(self, z: np.ndarray) -> np.ndarray:
        w1, b1, w2, b2 = self.weights
        return sigmoid(np.maximum(z @ w1 + b1, 0.0) @ w2 + b2)

    def _sample(self, n_out: int, rng: np.random.Generator) -> Table:
        z = rng.normal(size=(n_out, self.latent))
        if self.label_size:
            labels = rng.choice(self.label_size, size=n_out,
                                p=self.label_hist)
            onehot = np.zeros((n_out, self.label_size))
            onehot[np.arange(n_out), labels] = 1.0
            z = np.concatenate([z, onehot], axis=1)
        return self.encoder.decode(self._generator_forward(z), rng)

    # -- persistence ---------------------------------------------------
    def _model_state(self) -> dict:
        return {
            "weights": list(self.weights),
            "latent": self.latent,
            "label_size": self.label_size,
            "label_hist": self.label_hist,
        }

    @classmethod
    def _from_model_state(cls, state, relation, dcs, common):
        return cls(relation, state["weights"], state["latent"],
                   state["label_size"], state["label_hist"],
                   common["default_n"], common["seed"])


class PateGan(Synthesizer):
    """PATE-distilled GAN synthesizer.

    Parameters
    ----------
    epsilon, delta:
        Privacy budget consumed by the noisy teacher votes.
    n_teachers:
        Teacher-ensemble size (shards of the real data).
    iterations:
        Outer GAN iterations; each queries the teachers once per student
        batch row.
    batch, latent, hidden, lr, seed:
        The usual knobs.
    """

    name = "pategan"
    fitted_cls = FittedPateGan

    def __init__(self, epsilon: float, delta: float = 1e-6,
                 n_teachers: int = 5, iterations: int = 120,
                 batch: int = 32, latent: int = 8, hidden: int = 32,
                 lr: float = 1e-3, seed: int = 0):
        super().__init__(epsilon, delta=delta, seed=seed)
        self.n_teachers = n_teachers
        self.iterations = iterations
        self.batch = batch
        self.latent = latent
        self.hidden = hidden
        self.lr = lr

    # ------------------------------------------------------------------
    def fit(self, table: Table, *, trace=None) -> FittedPateGan:
        rng = np.random.default_rng(self.seed)
        ledger = BudgetLedger()
        relation = table.relation

        def _phase(name):
            return trace.phase(name) if trace is not None else nullcontext()

        with _phase("encode"):
            # Conditioning label: smallest-domain attribute (§7.1).
            label_attr = min((a for a in relation if a.is_categorical),
                             key=lambda a: a.domain.size, default=None)
            label_name = label_attr.name if label_attr is not None else None
            label_size = (label_attr.domain.size
                          if label_attr is not None else 0)
            label_hist = None
            if label_name is not None:
                counts = np.bincount(
                    table.column(label_name).astype(np.int64),
                    minlength=label_size).astype(float)
                label_hist = counts / counts.sum()

            encoder = MixedEncoder(relation)
            X = encoder.encode(table)
            n_rows, dim = X.shape

        with _phase("train"):
            gen = _MLP(self.latent + label_size, self.hidden, dim, rng,
                       "gen")
            teachers = [_MLP(dim, self.hidden, 1, rng, f"teacher{t}")
                        for t in range(self.n_teachers)]
            student = _MLP(dim, self.hidden, 1, rng, "student")
            gen_opt = Adam(gen.parameters(), lr=self.lr)
            teacher_opts = [Adam(t.parameters(), lr=self.lr)
                            for t in teachers]
            student_opt = Adam(student.parameters(), lr=self.lr)

            shards = np.array_split(rng.permutation(n_rows),
                                    self.n_teachers)
            vote_queries = self.iterations  # one noisy vote batch per iter
            ledger.spend(f"gaussian:pate-teacher-votes x{vote_queries} "
                         f"(rdp-calibrated)", self.epsilon, self.delta)
            vote_sigma = calibrate_sgm_sigma(self.epsilon, self.delta, 1.0,
                                             vote_queries)

            def generate(m):
                z = rng.normal(size=(m, self.latent))
                if label_size:
                    labels = rng.choice(label_size, size=m, p=label_hist)
                    onehot = np.zeros((m, label_size))
                    onehot[np.arange(m), labels] = 1.0
                    z = np.concatenate([z, onehot], axis=1)
                raw = gen.forward(z)
                return sigmoid(raw), raw

            for _ in range(self.iterations):
                fake, _ = generate(self.batch)
                # Teachers: real shard rows vs current fakes.
                for teacher, opt, shard in zip(teachers, teacher_opts,
                                               shards):
                    if shard.size == 0:
                        continue
                    real_idx = rng.choice(shard,
                                          size=min(self.batch, shard.size),
                                          replace=False)
                    xb = np.concatenate([X[real_idx], fake])
                    yb = np.concatenate([np.ones(real_idx.size),
                                         np.zeros(fake.shape[0])])
                    opt.zero_grad()
                    logits = teacher.forward(xb)[:, 0]
                    _, grad = bce_with_logits_loss(logits, yb)
                    teacher.backward((grad / xb.shape[0])[:, None])
                    opt.step()
                # Student: fakes labeled by the noisy teacher vote.
                votes = np.zeros(fake.shape[0])
                for teacher in teachers:
                    votes += (teacher.forward(fake)[:, 0] > 0)
                noisy = votes + rng.normal(0.0, vote_sigma,
                                           size=votes.shape)
                student_labels = (noisy > self.n_teachers / 2).astype(float)
                student_opt.zero_grad()
                logits = student.forward(fake)[:, 0]
                _, grad = bce_with_logits_loss(logits, student_labels)
                student.backward((grad / fake.shape[0])[:, None])
                student_opt.step()
                # Generator: fool the student (non-saturating loss).
                gen_opt.zero_grad()
                fake, raw = generate(self.batch)
                logits = student.forward(fake)[:, 0]
                _, grad = bce_with_logits_loss(logits,
                                               np.ones_like(logits))
                g_fake = student.backward((grad / fake.shape[0])[:, None])
                # Through the output sigmoid of the generator.
                gen.backward(g_fake * fake * (1.0 - fake))
                gen_opt.step()

        weights = (gen.l1.weight.value, gen.l1.bias.value,
                   gen.l2.weight.value, gen.l2.bias.value)
        return FittedPateGan(
            relation, weights, self.latent, label_size, label_hist,
            table.n, self.seed, ledger=ledger,
            rng_state=rng.bit_generator.state)
