"""Deterministic fault injection for chaos testing.

Production code calls :func:`fault_point` at the places where the real
world fails — worker processes, artifact reads, stream writes, cache
fills, registry loads.  When no injector is installed the call is a
single ``None`` check, so shipping the hooks costs nothing.  When one
*is* installed (programmatically via :func:`install` or through the
``REPRO_FAULTS`` environment variable) each named site counts its hits
and fires its configured action at a deterministic hit index, which is
what lets the chaos suite assert exact recovery behaviour instead of
hoping a race shows up.

Spec grammar (comma-separated, whitespace ignored)::

    site=action[:arg][@after][xTIMES]

    engine.worker=kill              kill the worker process on hit 1
    registry.load=sleep:0.5         sleep 500 ms on every load
    stream.write=enospc@3           raise ENOSPC on the 3rd write
    model_io.read=error@1x2         raise FaultInjected on hits 1-2

Actions:

``kill``
    ``os._exit(3)`` — simulates a worker process dying mid-task.  Only
    meaningful at sites that run inside pool workers.
``sleep:<seconds>``
    Blocks for the given time — simulates a slow load / slow disk.
``enospc``
    Raises ``OSError(errno.ENOSPC)`` — simulates disk exhaustion.
``error``
    Raises :class:`FaultInjected` — simulates an unreadable/corrupt
    artifact or any other hard failure at the site.

``@after`` (default 1) is the 1-based hit index at which the fault
starts firing; ``xTIMES`` (default 1) is how many consecutive hits
fire; ``x*`` fires forever.  Counters are per-injector and guarded by
a lock, so multi-threaded draws hit deterministic indices.  Forked
pool workers inherit a *copy* of the counters, which gives "first hit
in any worker" semantics for ``kill`` — exactly what the self-healing
tests need.

Known sites (grep for ``fault_point(`` to confirm):

========================  ====================================================
``engine.worker``         inside process-pool worker tasks (kill target)
``fit.<stage>``           after each fit checkpoint is persisted
``model_io.read``         before parsing a model/checkpoint npz
``model_io.save``         before the atomic replace of a model save
``stream.write``          before each chunk write in ``write_table_stream``
``cache.put``             before the draw cache commits an entry
``registry.load``         before the serve registry loads an artifact
========================  ====================================================
"""

from __future__ import annotations

import errno
import math
import os
import re
import threading
import time
from dataclasses import dataclass, field

ENV_VAR = "REPRO_FAULTS"

_ACTIONS = ("kill", "sleep", "enospc", "error")


class FaultInjected(RuntimeError):
    """Raised by an ``error`` action at an armed fault point."""


@dataclass(frozen=True)
class FaultSpec:
    """One armed site: what fires, when, and how often."""

    site: str
    action: str
    arg: float | None = None
    after: int = 1
    times: float = 1  # math.inf for "x*"

    def fires_at(self, hit: int) -> bool:
        return self.after <= hit < self.after + self.times


_RHS = re.compile(
    r"^(?P<action>[a-z_]+)"
    r"(?::(?P<arg>[0-9.]+))?"
    r"(?:@(?P<after>\d+))?"
    r"(?:x(?P<times>\d+|\*))?$")


def parse_spec(text: str) -> list[FaultSpec]:
    """Parse the ``REPRO_FAULTS`` grammar into :class:`FaultSpec` list."""
    specs: list[FaultSpec] = []
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        if "=" not in clause:
            raise ValueError(f"fault spec {clause!r}: expected site=action")
        site, _, rhs = clause.partition("=")
        match = _RHS.match(rhs.strip())
        if match is None or match["action"] not in _ACTIONS:
            raise ValueError(
                f"fault spec {clause!r}: unknown action; expected "
                f"action[:arg][@after][xTIMES] with an action in "
                f"{', '.join(_ACTIONS)}")
        times: float = 1
        if match["times"]:
            times = math.inf if match["times"] == "*" \
                else int(match["times"])
        arg = float(match["arg"]) if match["arg"] else None
        if match["action"] == "sleep" and arg is None:
            raise ValueError(f"fault spec {clause!r}: sleep needs :seconds")
        specs.append(FaultSpec(
            site=site.strip(), action=match["action"], arg=arg,
            after=int(match["after"] or 1), times=times))
    return specs


@dataclass
class FaultRecord:
    """One fired fault, kept on the injector for assertions."""

    site: str
    action: str
    hit: int


class FaultInjector:
    """Counts hits per site and fires the matching spec's action."""

    def __init__(self, specs: str | list[FaultSpec]):
        if isinstance(specs, str):
            specs = parse_spec(specs)
        self._specs: dict[str, list[FaultSpec]] = {}
        for spec in specs:
            self._specs.setdefault(spec.site, []).append(spec)
        self._hits: dict[str, int] = {}
        self._lock = threading.Lock()
        self.fired: list[FaultRecord] = []

    def hits(self, site: str) -> int:
        with self._lock:
            return self._hits.get(site, 0)

    def hit(self, site: str) -> None:
        specs = self._specs.get(site)
        with self._lock:
            count = self._hits.get(site, 0) + 1
            self._hits[site] = count
            live = None
            if specs:
                for spec in specs:
                    if spec.fires_at(count):
                        live = spec
                        break
                if live is not None:
                    self.fired.append(
                        FaultRecord(site=site, action=live.action, hit=count))
        if live is None:
            return
        self._fire(live, site)

    @staticmethod
    def _fire(spec: FaultSpec, site: str) -> None:
        if spec.action == "kill":
            os._exit(3)
        if spec.action == "sleep":
            time.sleep(spec.arg or 0.0)
            return
        if spec.action == "enospc":
            raise OSError(errno.ENOSPC,
                          f"No space left on device [injected at {site}]")
        raise FaultInjected(f"injected fault at {site}")


_ACTIVE: FaultInjector | None = None


def install(specs: str | list[FaultSpec]) -> FaultInjector:
    """Arm an injector process-wide; returns it for later assertions."""
    global _ACTIVE
    injector = specs if isinstance(specs, FaultInjector) else \
        FaultInjector(specs)
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    """Disarm fault injection; ``fault_point`` returns to zero-cost."""
    global _ACTIVE
    _ACTIVE = None


def active() -> FaultInjector | None:
    return _ACTIVE


def fault_point(site: str) -> None:
    """Hook called from production code; no-op unless armed."""
    injector = _ACTIVE
    if injector is not None:
        injector.hit(site)


class injected:
    """Context manager arming a spec for the duration of a test."""

    def __init__(self, specs: str | list[FaultSpec]):
        self.injector = FaultInjector(specs) \
            if not isinstance(specs, FaultInjector) else specs

    def __enter__(self) -> FaultInjector:
        install(self.injector)
        return self.injector

    def __exit__(self, *exc) -> None:
        uninstall()


_env_spec = os.environ.get(ENV_VAR)
if _env_spec:
    install(_env_spec)
