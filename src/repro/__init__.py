"""Kamino: constraint-aware differentially private data synthesis.

A from-scratch reproduction of "Kamino: Constraint-Aware Differentially
Private Data Synthesis" (Ge, Mohapatra, He, Ilyas - VLDB 2021).

Public API highlights
---------------------
- :class:`repro.core.Kamino` - the end-to-end synthesizer (Algorithm 1).
- :mod:`repro.constraints` - denial constraints and violation counting.
- :mod:`repro.privacy` - Gaussian mechanism, DP-SGD, RDP accountant.
- :mod:`repro.datasets` - seeded generators mirroring the paper's
  Adult / BR2000 / Tax / TPC-H workloads.
- :mod:`repro.baselines` - PrivBayes, PATE-GAN, DP-VAE, NIST-MST.
- :mod:`repro.evaluation` - the paper's Metrics I-III and the
  experiment harness regenerating every table and figure.
- :mod:`repro.io` - schema/DC/dataset persistence (bundles).
- :class:`repro.privacy.ledger.PrivacyLedger` - budget accounting
  across repeated releases.
- :class:`repro.core.growing.GrowingSynthesizer` - the update policy
  for growing databases (§3.2 / future work).
- :mod:`repro.cli` - the ``repro-kamino`` command-line interface.
"""

__version__ = "1.0.0"
