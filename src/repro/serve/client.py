"""A thin stdlib client for the serving API.

Used by the test suite and the CI ``serve-smoke`` job; also a worked
example of the HTTP contract (see ``docs/SERVING.md``).  Only
``urllib`` — the client adds nothing the endpoints don't already
guarantee, it just shapes requests and responses::

    client = ServeClient("http://127.0.0.1:8765")
    client.register("adult", "model.npz", "schema.json", dcs="dcs.txt")
    resp = client.sample("adult", n=1000, seed=7)
    resp.body                     # the full response bytes
    again = client.sample("adult", n=1000, seed=7, etag=resp.etag)
    again.status                  # 304 — revalidated, no body resent
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass

#: Statuses worth retrying: explicit backpressure answers.  4xx/5xx
#: outside this set are deterministic (bad request, quarantined
#: artifact, missing backend) — retrying them only repeats the answer.
RETRY_STATUSES = frozenset({429, 503})


@dataclass
class ServeResponse:
    """One HTTP exchange: status, selected headers, body bytes."""

    status: int
    headers: dict
    body: bytes

    @property
    def etag(self) -> str | None:
        return self.headers.get("ETag")

    @property
    def cache_state(self) -> str | None:
        """``"hit"`` / ``"miss"`` from the ``X-Cache`` header."""
        return self.headers.get("X-Cache")

    def json(self):
        return json.loads(self.body.decode())


class ServeClient:
    """Requests against one running ``repro-kamino serve`` instance.

    GETs retry on backpressure (429/503, honoring ``Retry-After``) and
    transient transport failures (connection refused/reset) with capped
    exponential backoff: ``retries`` extra attempts, waiting
    ``min(backoff * 2**attempt, backoff_cap)`` seconds — or the
    server's ``Retry-After``, whichever the server asked for.  POSTs
    never retry.  When attempts run out the last HTTP response is
    returned (or the last transport error raised), so callers still
    see exactly what the server said.
    """

    def __init__(self, base_url: str, timeout: float = 60.0,
                 retries: int = 0, backoff: float = 0.1,
                 backoff_cap: float = 5.0, sleep=time.sleep):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.backoff_cap = float(backoff_cap)
        self._sleep = sleep  # injectable for tests

    def _retry_delay(self, attempt: int, retry_after=None) -> float:
        if retry_after is not None:
            try:
                return max(float(retry_after), 0.0)
            except ValueError:
                pass
        return min(self.backoff * (2 ** attempt), self.backoff_cap)

    # -- endpoints ------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz").json()

    def models(self) -> list[dict]:
        return self._request("GET", "/models").json()["models"]

    def register(self, name: str, model: str, schema: str,
                 dcs: str | None = None) -> dict:
        """Register a server-local artifact; returns the record."""
        payload = {"name": name, "model": model, "schema": schema}
        if dcs:
            payload["dcs"] = dcs
        resp = self._request("POST", "/models",
                             body=json.dumps(payload).encode(),
                             content_type="application/json")
        if resp.status != 201:
            raise RuntimeError(
                f"registration failed ({resp.status}): "
                f"{resp.body.decode(errors='replace')}")
        return resp.json()

    def sample(self, model: str, n: int | None = None,
               seed: int | None = None, version: str | None = None,
               fmt: str = "csv", etag: str | None = None) -> ServeResponse:
        """One draw request; pass ``etag`` to revalidate (304 on match).

        Raises on transport errors; HTTP error statuses (404/429/503/…)
        come back as the response so callers can read the backpressure
        headers.
        """
        params = {"model": model, "format": fmt}
        if version is not None:
            params["version"] = version
        if n is not None:
            params["n"] = str(n)
        if seed is not None:
            params["seed"] = str(seed)
        headers = {"If-None-Match": etag} if etag else {}
        return self._request(
            "GET", "/sample?" + urllib.parse.urlencode(params),
            headers=headers)

    def metrics(self) -> str:
        """The Prometheus text scrape."""
        return self._request("GET", "/metrics").body.decode()

    def metrics_json(self) -> dict:
        return self._request("GET", "/metrics?format=json").json()

    # -- transport ------------------------------------------------------
    def _request(self, method: str, path: str, body: bytes | None = None,
                 content_type: str | None = None,
                 headers: dict | None = None) -> ServeResponse:
        attempts = 1 + (self.retries if method == "GET" else 0)
        response = None
        for attempt in range(attempts):
            try:
                response = self._request_once(method, path, body,
                                              content_type, headers)
            except (urllib.error.URLError, ConnectionError, OSError):
                # Transport failure (refused, reset, mid-read EOF).
                if attempt + 1 >= attempts:
                    raise
                self._sleep(self._retry_delay(attempt))
                continue
            if (response.status not in RETRY_STATUSES
                    or attempt + 1 >= attempts):
                return response
            self._sleep(self._retry_delay(
                attempt, response.headers.get("Retry-After")))
        return response

    def _request_once(self, method: str, path: str,
                      body: bytes | None = None,
                      content_type: str | None = None,
                      headers: dict | None = None) -> ServeResponse:
        request = urllib.request.Request(self.base_url + path, data=body,
                                         method=method)
        if content_type:
            request.add_header("Content-Type", content_type)
        for key, value in (headers or {}).items():
            request.add_header(key, value)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as resp:
                return ServeResponse(resp.status, dict(resp.headers),
                                     resp.read())
        except urllib.error.HTTPError as exc:
            # 304 and the backpressure statuses are API answers, not
            # transport failures.
            return ServeResponse(exc.code, dict(exc.headers),
                                 exc.read() or b"")
