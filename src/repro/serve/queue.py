"""Request coalescing, per-model serialization, and backpressure.

The server handles each HTTP request on its own thread
(``ThreadingHTTPServer``); this module decides which of those threads
actually drive the engine:

* **Coalescing (single-flight).**  Concurrent requests for the same
  draw key — and, by construction of the key, the same
  ``(model, version, n, seed, format)`` — collapse onto one render: the
  first arrival runs it, the rest wait on its completion event and
  share the result.  The engine never renders the same response twice
  concurrently.
* **Per-model serialization.**  One render at a time per
  ``(name, version)``: the engine already shards a single draw across
  ``pool``/``workers``, so stacking concurrent draws of one model
  multiplies memory for zero throughput.  Distinct models render in
  parallel.
* **Backpressure.**  ``max_pending`` bounds how many distinct renders
  may be queued or running; past it, :class:`QueueFullError` (HTTP
  429).  ``timeout`` bounds how long any request waits for its result;
  past it, :class:`DrawTimeoutError` (HTTP 503).  Bounded queue +
  bounded wait ⇒ bounded memory, instead of an unbounded pile-up of
  draw threads.
"""

from __future__ import annotations

import threading


class QueueFullError(RuntimeError):
    """Too many distinct renders in flight — shed load (HTTP 429)."""


class DrawTimeoutError(RuntimeError):
    """The render did not complete within the request timeout (503)."""


class _Job:
    __slots__ = ("event", "result", "error", "waiters")

    def __init__(self):
        self.event = threading.Event()
        self.result = None
        self.error: BaseException | None = None
        self.waiters = 0


class DrawExecutor:
    """Runs render callables with coalescing and backpressure."""

    def __init__(self, max_pending: int = 16, timeout: float = 120.0):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.max_pending = int(max_pending)
        self.timeout = float(timeout)
        self._lock = threading.Lock()
        self._jobs: dict[str, _Job] = {}
        self._model_locks: dict[tuple, threading.Lock] = {}
        self.coalesced = 0   # requests that attached to an existing job
        self.rejected = 0    # QueueFullError count
        self.timeouts = 0    # DrawTimeoutError count

    @property
    def depth(self) -> int:
        """Distinct renders currently queued or running."""
        with self._lock:
            return len(self._jobs)

    def run(self, key: str, model_key: tuple, fn, *,
            timeout: float | None = None):
        """Render ``key`` via ``fn()`` — or wait for whoever already is.

        ``model_key`` scopes the per-model serialization lock.  Returns
        ``fn()``'s result; raises :class:`QueueFullError`,
        :class:`DrawTimeoutError`, or whatever ``fn`` raised (also
        re-raised in every coalesced waiter).
        """
        wait = self.timeout if timeout is None else float(timeout)
        with self._lock:
            job = self._jobs.get(key)
            owner = job is None
            if owner:
                if len(self._jobs) >= self.max_pending:
                    self.rejected += 1
                    raise QueueFullError(
                        f"draw queue full ({self.max_pending} renders "
                        f"in flight)")
                job = _Job()
                self._jobs[key] = job
                model_lock = self._model_locks.setdefault(
                    model_key, threading.Lock())
            else:
                job.waiters += 1
                self.coalesced += 1
        if not owner:
            return self._await(job, wait)
        # This thread owns the render.
        try:
            if not model_lock.acquire(timeout=wait):
                with self._lock:
                    self.timeouts += 1
                raise DrawTimeoutError(
                    f"model {model_key} is busy; gave up after {wait:g}s")
            try:
                job.result = fn()
            finally:
                model_lock.release()
        except BaseException as exc:
            job.error = exc
            raise
        finally:
            with self._lock:
                self._jobs.pop(key, None)
            job.event.set()
        return job.result

    def _await(self, job: _Job, wait: float):
        if not job.event.wait(wait):
            with self._lock:
                self.timeouts += 1
            raise DrawTimeoutError(
                f"coalesced draw did not finish within {wait:g}s")
        if job.error is not None:
            raise job.error
        return job.result

    def stats(self) -> dict:
        with self._lock:
            return {
                "depth": len(self._jobs),
                "max_pending": self.max_pending,
                "coalesced": self.coalesced,
                "rejected": self.rejected,
                "timeouts": self.timeouts,
            }
