"""The deterministic draw cache: (model version, n, seed, format) → bytes.

Under the counter-based Philox streams a draw is a pure function of
``(model bytes, n, seed)``, and the registry's version ids *are* the
model bytes (content digests) — so a rendered response is immutable and
perfectly cacheable.  The cache stores each response body as one file
plus a tiny ``.meta.json`` sidecar carrying its **strong ETag** (the
sha256 of the body) and content type; ``If-None-Match`` revalidation is
an index lookup away and never re-touches the engine.

Bounded: ``max_bytes`` caps the total body bytes on disk; insertion
evicts least-recently-*served* entries first.  The index is in-memory
(rebuilt from the directory on startup, oldest-mtime first) and guarded
by one lock; bodies are written to a temp file in the same directory
and published with ``os.replace`` so readers never observe a torn
entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.faults import fault_point

#: Default size bound: 256 MiB of cached response bodies.
DEFAULT_MAX_BYTES = 256 << 20

_META_SUFFIX = ".meta.json"


def draw_key(version: str, n, seed, fmt: str) -> str:
    """The cache key of one deterministic draw request.

    ``version`` is the registry's content-digest version id, so the key
    covers the model bytes; ``n``/``seed`` may be ``None`` (the
    artifact's defaults — themselves part of the model bytes).
    """
    raw = f"{version}|n={n}|seed={seed}|fmt={fmt}"
    return hashlib.sha256(raw.encode()).hexdigest()[:32]


def body_etag(path: str) -> str:
    """Strong ETag of a response body: quoted sha256 of the bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as f:
        for block in iter(lambda: f.read(1 << 20), b""):
            digest.update(block)
    return f'"{digest.hexdigest()}"'


@dataclass(frozen=True)
class CachedDraw:
    """One materialized response: the body file plus its HTTP facts."""

    key: str
    path: str
    etag: str
    nbytes: int
    content_type: str


class DrawCache:
    """Size-bounded LRU store of rendered draw responses."""

    def __init__(self, cache_dir: str, max_bytes: int = DEFAULT_MAX_BYTES):
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.cache_dir = cache_dir
        self.max_bytes = int(max_bytes)
        os.makedirs(cache_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._index: OrderedDict[str, CachedDraw] = OrderedDict()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Entries dropped at rebuild because their bytes no longer
        #: hash to their recorded ETag (truncated/corrupted on disk).
        self.corrupt_dropped = 0
        self._scan()

    # -- lookup ---------------------------------------------------------
    def get(self, key: str) -> CachedDraw | None:
        """The cached response for ``key``, refreshing its LRU slot.

        Counts a hit or miss — call once per served request.
        """
        with self._lock:
            entry = self._index.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._index.move_to_end(key)
            self.hits += 1
            return entry

    def peek(self, key: str) -> CachedDraw | None:
        """Like :meth:`get` but with no hit/miss accounting."""
        with self._lock:
            return self._index.get(key)

    # -- insertion ------------------------------------------------------
    def begin(self, key: str) -> str:
        """A private temp path (same directory, atomically publishable)
        for rendering the body of ``key``."""
        return os.path.join(
            self.cache_dir,
            f".tmp-{key}-{os.getpid()}-{threading.get_ident()}")

    def put(self, key: str, tmp_path: str, content_type: str) -> CachedDraw:
        """Publish a rendered body; returns the committed entry.

        Hashes the body for the strong ETag, moves the file into place,
        writes the meta sidecar, and evicts LRU entries past
        ``max_bytes``.  A concurrent identical ``put`` (same key ⇒ same
        bytes, by determinism) simply replaces the file.
        """
        fault_point("cache.put")
        etag = body_etag(tmp_path)
        nbytes = os.path.getsize(tmp_path)
        path = os.path.join(self.cache_dir, key)
        entry = CachedDraw(key=key, path=path, etag=etag, nbytes=nbytes,
                           content_type=content_type)
        os.replace(tmp_path, path)
        with open(path + _META_SUFFIX + ".tmp", "w") as f:
            json.dump({"etag": etag, "content_type": content_type}, f)
        os.replace(path + _META_SUFFIX + ".tmp", path + _META_SUFFIX)
        with self._lock:
            old = self._index.pop(key, None)
            if old is not None:
                self.total_bytes -= old.nbytes
            self._index[key] = entry
            self.total_bytes += nbytes
            self._evict_locked()
        return entry

    def discard(self, tmp_path: str) -> None:
        """Drop a failed render's temp file, if it got as far as disk."""
        try:
            os.unlink(tmp_path)
        except FileNotFoundError:
            pass

    # -- internals ------------------------------------------------------
    def _evict_locked(self) -> None:
        while self.total_bytes > self.max_bytes and len(self._index) > 1:
            key, entry = self._index.popitem(last=False)
            self.total_bytes -= entry.nbytes
            self.evictions += 1
            for path in (entry.path, entry.path + _META_SUFFIX):
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass
        # A single entry larger than the whole budget still serves (it
        # is already rendered); it just evicts everything else.

    def _scan(self) -> None:
        """Rebuild the index from disk, oldest served (mtime) first.

        Every candidate body is re-hashed against the ETag its sidecar
        recorded; a mismatch (truncated write, bit rot, a partial copy)
        deletes the entry and bumps ``corrupt_dropped`` instead of ever
        serving corrupted bytes with a strong validator.
        """
        entries = []
        for name in os.listdir(self.cache_dir):
            if name.endswith(_META_SUFFIX) or name.startswith("."):
                continue
            path = os.path.join(self.cache_dir, name)
            meta_path = path + _META_SUFFIX
            if not os.path.isfile(path) or not os.path.isfile(meta_path):
                continue
            try:
                with open(meta_path) as f:
                    meta = json.load(f)
                recorded = meta["etag"]
                actual = body_etag(path)
            except (OSError, ValueError, KeyError):
                continue
            if actual != recorded:
                self.corrupt_dropped += 1
                for stale in (path, meta_path):
                    try:
                        os.unlink(stale)
                    except OSError:
                        pass
                continue
            entries.append((os.path.getmtime(path), CachedDraw(
                key=name, path=path, etag=recorded,
                nbytes=os.path.getsize(path),
                content_type=meta.get("content_type",
                                      "application/octet-stream"))))
        entries.sort(key=lambda pair: pair[0])
        for _, entry in entries:
            self._index[entry.key] = entry
            self.total_bytes += entry.nbytes
        with self._lock:
            self._evict_locked()

    # -- metrics --------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._index),
                "bytes": self.total_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "corrupt_dropped": self.corrupt_dropped,
                "hit_rate": round(self.hits / total, 4) if total else 0.0,
            }
