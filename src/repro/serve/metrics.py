"""Serving telemetry: per-model counters folded from request traces.

Every uncached draw threads a :class:`repro.obs.trace.RunTrace` through
the render (the same collector ``fit``/``sample`` use), and the server
folds each finished trace into this aggregate.  ``/metrics`` renders it
two ways:

* **Prometheus text** (the default) — counters and gauges in the
  exposition format scrapers expect;
* **JSON** (``?format=json``) — the same numbers plus the most recent
  per-draw trace documents, for tests and humans.

Rendering pulls live queue depth and cache stats from the executor and
draw cache at scrape time, so the scrape is always current without the
hot path touching anything beyond its own counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque

#: Recent per-draw trace documents kept for the JSON view.
RECENT_DRAWS = 32


class ServeMetrics:
    """Thread-safe counters of everything the server did."""

    def __init__(self):
        self._lock = threading.Lock()
        #: (model, status) -> request count.  ``model`` is the request's
        #: model name, or ``"-"`` when the route has none.
        self.requests: dict[tuple[str, str], int] = OrderedDict()
        #: model:version -> {draws, rows, seconds}
        self.draws: dict[str, dict] = OrderedDict()
        self.recent: deque = deque(maxlen=RECENT_DRAWS)
        #: Named robustness events: ``quarantine_rejects``,
        #: ``degraded_streams``, ``render_deadline_exceeded``, …
        self.events: dict[str, int] = OrderedDict()

    def observe_request(self, model: str | None, status: int) -> None:
        key = (model or "-", str(status))
        with self._lock:
            self.requests[key] = self.requests.get(key, 0) + 1

    def observe_event(self, name: str, inc: int = 1) -> None:
        """Count one robustness event (quarantine hit, degraded
        stream, deadline trip)."""
        with self._lock:
            self.events[name] = self.events.get(name, 0) + inc

    def observe_draw(self, model_key: str, rows: int, seconds: float,
                     trace=None) -> None:
        """Fold one rendered draw (and its RunTrace) into the totals."""
        with self._lock:
            entry = self.draws.setdefault(
                model_key, {"draws": 0, "rows": 0, "seconds": 0.0})
            entry["draws"] += 1
            entry["rows"] += int(rows)
            entry["seconds"] += float(seconds)
            if trace is not None:
                self.recent.append(trace.to_dict())

    # -- rendering ------------------------------------------------------
    def snapshot(self, cache_stats: dict, queue_stats: dict,
                 loaded_models: int) -> dict:
        with self._lock:
            draws = {
                key: dict(entry, rows_per_sec=round(
                    entry["rows"] / max(entry["seconds"], 1e-9), 1))
                for key, entry in self.draws.items()
            }
            return {
                "requests": {f"{m}|{s}": c
                             for (m, s), c in self.requests.items()},
                "draws": draws,
                "cache": dict(cache_stats),
                "queue": dict(queue_stats),
                "events": dict(self.events),
                "models_loaded": loaded_models,
                "recent_traces": list(self.recent),
            }

    def render_prometheus(self, cache_stats: dict, queue_stats: dict,
                          loaded_models: int) -> str:
        """The Prometheus exposition-format scrape body."""
        snap = self.snapshot(cache_stats, queue_stats, loaded_models)
        lines = [
            "# TYPE kamino_serve_requests_total counter",
        ]
        for key, count in snap["requests"].items():
            model, status = key.rsplit("|", 1)
            lines.append(
                f'kamino_serve_requests_total{{model="{model}",'
                f'status="{status}"}} {count}')
        lines.append("# TYPE kamino_serve_draws_total counter")
        for model, entry in snap["draws"].items():
            labels = f'{{model="{model}"}}'
            lines.append(
                f"kamino_serve_draws_total{labels} {entry['draws']}")
            lines.append(
                f"kamino_serve_draw_rows_total{labels} {entry['rows']}")
            lines.append(
                f"kamino_serve_draw_seconds_total{labels} "
                f"{entry['seconds']:.6f}")
            lines.append(
                f"kamino_serve_rows_per_sec{labels} "
                f"{entry['rows_per_sec']}")
        cache = snap["cache"]
        lines += [
            "# TYPE kamino_serve_cache_hits_total counter",
            f"kamino_serve_cache_hits_total {cache.get('hits', 0)}",
            f"kamino_serve_cache_misses_total {cache.get('misses', 0)}",
            f"kamino_serve_cache_evictions_total "
            f"{cache.get('evictions', 0)}",
            f"kamino_serve_cache_corrupt_dropped_total "
            f"{cache.get('corrupt_dropped', 0)}",
            "# TYPE kamino_serve_cache_hit_rate gauge",
            f"kamino_serve_cache_hit_rate {cache.get('hit_rate', 0.0)}",
            f"kamino_serve_cache_bytes {cache.get('bytes', 0)}",
            f"kamino_serve_cache_entries {cache.get('entries', 0)}",
        ]
        lines.append("# TYPE kamino_serve_events_total counter")
        for name, count in snap["events"].items():
            lines.append(
                f'kamino_serve_events_total{{event="{name}"}} {count}')
        queue = snap["queue"]
        lines += [
            "# TYPE kamino_serve_queue_depth gauge",
            f"kamino_serve_queue_depth {queue.get('depth', 0)}",
            f"kamino_serve_queue_coalesced_total "
            f"{queue.get('coalesced', 0)}",
            f"kamino_serve_queue_rejected_total "
            f"{queue.get('rejected', 0)}",
            f"kamino_serve_queue_timeouts_total "
            f"{queue.get('timeouts', 0)}",
            "# TYPE kamino_serve_models_loaded gauge",
            f"kamino_serve_models_loaded {loaded_models}",
        ]
        return "\n".join(lines) + "\n"
