"""Named + versioned model artifacts on disk, with a hot cache.

The registry owns the serving layer's artifact lifecycle so the engine
can stay a pure library.  On disk a registered model is::

    <models_dir>/<name>/<version>.kamino          # native Kamino v2
    <models_dir>/<name>/<version>.synth           # repro.synth/1 payload
    <models_dir>/<name>/<version>.schema.json     # public schema sidecar
    <models_dir>/<name>/<version>.dcs.txt         # optional DC sidecar

``version`` is a **content digest** (the first 12 hex chars of the
model file's sha256), so a version id names exactly one set of bytes:
re-registering identical bytes is a no-op, a changed artifact gets a
new version, and the draw cache can key responses off the version
alone.  The schema (and DCs) ride as sidecars because the artifact
formats deliberately exclude the public inputs (see
:meth:`FittedSynthesizer.save <repro.synth.protocol.FittedSynthesizer.save>`).

Loaded artifacts live in an in-memory **hot cache**: LRU over
``(name, version)``, lazily populated on first request, bounded by
``hot_limit``.  Concurrent cold requests for the same model coalesce
onto one load (per-key single-flight locks) — no duplicate loads, no
torn reads.  All six registered backends serve through the one
:func:`repro.synth.load_fitted` dispatch; ``peek_method`` decides the
``.kamino`` / ``.synth`` suffix at registration time.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.faults import fault_point
from repro.io.dc_text import load_dcs
from repro.io.schema_json import load_relation
from repro.synth import load_fitted, peek_method, resolve_backend
from repro.synth.registry import BackendUnavailable

#: Model-file suffix by artifact format: native Kamino model v2 files
#: keep their own loader; everything else is a ``repro.synth/1`` payload.
NATIVE_SUFFIX = ".kamino"
SYNTH_SUFFIX = ".synth"
_MODEL_SUFFIXES = (NATIVE_SUFFIX, SYNTH_SUFFIX)

#: Hex chars of the sha256 content digest used as the version id.
VERSION_DIGEST_CHARS = 12


class UnknownModelError(KeyError):
    """No registered model matches the requested (name, version)."""


class QuarantinedModelError(RuntimeError):
    """The artifact failed digest or load verification.

    Raised on every request for the (name, version) after the failing
    load, so clients get one clear error instead of the server
    re-reading broken bytes (or worse, a raw traceback) per request.
    Re-registering a good artifact produces a new content-digest
    version, which is not quarantined.
    """

    def __init__(self, name: str, version: str, reason: str):
        self.name = name
        self.version = version
        self.reason = reason
        super().__init__(
            f"model {name}:{version} is quarantined: {reason}")


def content_version(path: str) -> str:
    """The content-digest version id of an artifact file."""
    digest = hashlib.sha256()
    with open(path, "rb") as f:
        for block in iter(lambda: f.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()[:VERSION_DIGEST_CHARS]


def _safe_name(name: str) -> str:
    if not name or name != os.path.basename(name) or name.startswith("."):
        raise ValueError(f"invalid model name {name!r}")
    return name


@dataclass(frozen=True)
class ModelRecord:
    """One registered (name, version): paths plus cheap metadata."""

    name: str
    version: str
    method: str
    path: str
    schema_path: str
    dcs_path: str | None

    @property
    def nbytes(self) -> int:
        return os.path.getsize(self.path)

    def supports_native_stream(self) -> bool | None:
        """Whether this model's fitted class streams natively.

        Resolved from the backend class (no artifact load); ``None``
        when the backend itself is unavailable (missing optional dep).
        """
        try:
            cls = resolve_backend(self.method).fitted_class()
        except (BackendUnavailable, KeyError, NotImplementedError):
            return None
        return bool(getattr(cls, "supports_native_stream", False))


class LoadedModel:
    """A hot registry entry: the record plus its fitted artifact."""

    __slots__ = ("record", "fitted", "relation", "dcs")

    def __init__(self, record: ModelRecord, fitted, relation, dcs):
        self.record = record
        self.fitted = fitted
        self.relation = relation
        self.dcs = dcs


class ModelRegistry:
    """Disk-backed model store + bounded in-memory hot cache.

    ``hot_limit`` bounds how many fitted artifacts stay resident; the
    least-recently-*requested* entry is evicted first (an in-flight
    draw keeps its own reference, so eviction never tears a running
    request).
    """

    def __init__(self, models_dir: str, hot_limit: int = 8):
        if hot_limit < 1:
            raise ValueError(f"hot_limit must be >= 1, got {hot_limit}")
        self.models_dir = models_dir
        self.hot_limit = int(hot_limit)
        os.makedirs(models_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._hot: OrderedDict[tuple[str, str], LoadedModel] = OrderedDict()
        self._load_locks: dict[tuple[str, str], threading.Lock] = {}
        #: Completed artifact loads per (name, version) — the registry
        #: concurrency tests pin "parallel cold requests load once".
        self.load_counts: dict[tuple[str, str], int] = {}
        #: (name, version) -> reason for every artifact that failed
        #: digest/load verification; requests for them fail fast.
        self.quarantined: dict[tuple[str, str], str] = {}

    # -- registration ---------------------------------------------------
    def register(self, name: str, model_path: str, schema_path: str,
                 dcs_path: str | None = None) -> ModelRecord:
        """Copy an artifact (plus sidecars) into the store.

        Returns the record; registering bytes that are already present
        under ``name`` is an idempotent no-op returning the existing
        version.
        """
        name = _safe_name(name)
        for path in filter(None, (model_path, schema_path, dcs_path)):
            if not os.path.isfile(path):
                raise FileNotFoundError(path)
        method = peek_method(model_path) or "kamino"
        suffix = NATIVE_SUFFIX if method == "kamino" else SYNTH_SUFFIX
        version = content_version(model_path)
        directory = os.path.join(self.models_dir, name)
        os.makedirs(directory, exist_ok=True)
        base = os.path.join(directory, version)
        dest_dcs = base + ".dcs.txt" if dcs_path else None
        record = ModelRecord(name=name, version=version, method=method,
                             path=base + suffix,
                             schema_path=base + ".schema.json",
                             dcs_path=dest_dcs)
        if not os.path.exists(record.path):
            _copy_atomic(model_path, record.path)
        _copy_atomic(schema_path, record.schema_path)
        if dcs_path:
            _copy_atomic(dcs_path, dest_dcs)
        return record

    # -- lookup ---------------------------------------------------------
    def model_names(self) -> list[str]:
        try:
            entries = sorted(os.listdir(self.models_dir))
        except FileNotFoundError:
            return []
        return [e for e in entries
                if os.path.isdir(os.path.join(self.models_dir, e))
                and not e.startswith((".", "_"))]

    def versions(self, name: str) -> list[ModelRecord]:
        """All registered versions of ``name``, oldest registered first."""
        directory = os.path.join(self.models_dir, _safe_name(name))
        records = []
        try:
            entries = os.listdir(directory)
        except FileNotFoundError:
            raise UnknownModelError(f"unknown model {name!r}") from None
        for entry in sorted(entries):
            stem, suffix = os.path.splitext(entry)
            if suffix not in _MODEL_SUFFIXES:
                continue
            path = os.path.join(directory, entry)
            base = os.path.join(directory, stem)
            dcs = base + ".dcs.txt"
            records.append(ModelRecord(
                name=name, version=stem,
                method=peek_method(path) or "kamino", path=path,
                schema_path=base + ".schema.json",
                dcs_path=dcs if os.path.exists(dcs) else None))
        if not records:
            raise UnknownModelError(f"unknown model {name!r}")
        records.sort(key=lambda r: os.path.getmtime(r.path))
        return records

    def resolve(self, name: str, version: str | None = None) -> ModelRecord:
        """The record for ``(name, version)``; latest when no version."""
        records = self.versions(name)
        if version is None:
            return records[-1]
        for record in records:
            if record.version == version:
                return record
        raise UnknownModelError(
            f"model {name!r} has no version {version!r} "
            f"(registered: {', '.join(r.version for r in records)})")

    def list_models(self) -> list[dict]:
        """JSON-ready description of every registered (name, version)."""
        out = []
        with self._lock:
            hot = set(self._hot)
            quarantined = dict(self.quarantined)
        for name in self.model_names():
            for record in self.versions(name):
                key = (record.name, record.version)
                out.append({
                    "name": record.name,
                    "version": record.version,
                    "method": record.method,
                    "bytes": record.nbytes,
                    "supports_native_stream":
                        record.supports_native_stream(),
                    "loaded": key in hot,
                    "quarantined": quarantined.get(key),
                })
        return out

    # -- hot cache ------------------------------------------------------
    def get(self, name: str, version: str | None = None) -> LoadedModel:
        """The loaded artifact, loading lazily on first request.

        Single-flight per (name, version): under concurrent cold
        requests exactly one thread runs the load, the rest block on it
        and share the result.

        The artifact's bytes are verified against its content-digest
        version before loading; a digest mismatch or a failing load
        quarantines the (name, version) — this and every later request
        raise :class:`QuarantinedModelError` without re-reading the
        broken file.
        """
        record = self.resolve(name, version)
        key = (record.name, record.version)
        with self._lock:
            reason = self.quarantined.get(key)
            if reason is not None:
                raise QuarantinedModelError(record.name, record.version,
                                            reason)
            hit = self._hot.get(key)
            if hit is not None:
                self._hot.move_to_end(key)
                return hit
            load_lock = self._load_locks.setdefault(key, threading.Lock())
        with load_lock:
            with self._lock:
                reason = self.quarantined.get(key)
                if reason is not None:
                    raise QuarantinedModelError(record.name,
                                                record.version, reason)
                hit = self._hot.get(key)
                if hit is not None:
                    self._hot.move_to_end(key)
                    return hit
            try:
                fault_point("registry.load")
                self._verify(record)
                loaded = LoadedModel(record, *self._load(record))
            except BackendUnavailable:
                # An environment gap (missing optional dependency), not
                # a broken artifact: don't quarantine, let the server
                # answer 501 as before.
                raise
            except Exception as exc:
                reason = f"{type(exc).__name__}: {exc}"
                with self._lock:
                    self.quarantined[key] = reason
                raise QuarantinedModelError(record.name, record.version,
                                            reason) from exc
            with self._lock:
                self._hot[key] = loaded
                self._hot.move_to_end(key)
                self.load_counts[key] = self.load_counts.get(key, 0) + 1
                while len(self._hot) > self.hot_limit:
                    self._hot.popitem(last=False)
            return loaded

    def hot_keys(self) -> list[tuple[str, str]]:
        """Resident (name, version) keys, least recently used first."""
        with self._lock:
            return list(self._hot)

    def evict(self, name: str, version: str | None = None) -> bool:
        """Drop a hot entry (the disk artifact stays registered)."""
        with self._lock:
            if version is None:
                keys = [k for k in self._hot if k[0] == name]
            else:
                keys = [(name, version)] if (name, version) in self._hot \
                    else []
            for key in keys:
                del self._hot[key]
            return bool(keys)

    def _verify(self, record: ModelRecord) -> None:
        """Check the artifact's bytes still hash to its version id."""
        actual = content_version(record.path)
        if actual != record.version:
            raise ValueError(
                f"artifact bytes hash to {actual!r} but the registered "
                f"content-digest version is {record.version!r} "
                f"(on-disk corruption or tampering)")

    def _load(self, record: ModelRecord):
        if not os.path.exists(record.schema_path):
            raise FileNotFoundError(
                f"model {record.name}:{record.version} has no schema "
                f"sidecar ({record.schema_path})")
        relation = load_relation(record.schema_path)
        dcs = load_dcs(record.dcs_path, relation=relation) \
            if record.dcs_path else []
        fitted = load_fitted(record.path, relation, dcs=dcs)
        return fitted, relation, dcs


def _copy_atomic(src: str, dest: str) -> None:
    """Copy via a temp file + rename so readers never see a torn file."""
    tmp = f"{dest}.tmp.{os.getpid()}.{threading.get_ident()}"
    shutil.copyfile(src, tmp)
    os.replace(tmp, dest)
