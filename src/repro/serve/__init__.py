"""Synthesis-as-a-service: the long-running serving layer.

``fit`` is expensive and spends privacy budget; a draw is a pure
function of ``(model bytes, n, seed)`` under the engine's counter-based
Philox streams.  This package amortizes that asymmetry into a service —
the server owns artifact lifecycle, the engine stays a pure library:

* :mod:`repro.serve.registry` — named + content-digest-versioned
  artifacts on disk, an LRU hot cache of loaded fitted models,
  single-flight cold loads;
* :mod:`repro.serve.queue` — request coalescing, per-model
  serialization, bounded-depth backpressure (429/503);
* :mod:`repro.serve.cache` — the deterministic draw cache: rendered
  response bodies keyed by ``(version, n, seed, format)`` with strong
  ETags and LRU size bounding;
* :mod:`repro.serve.server` — the stdlib ``ThreadingHTTPServer``
  exposing ``/models``, ``/sample``, ``/healthz``, ``/metrics``
  (wired up as ``repro-kamino serve``);
* :mod:`repro.serve.metrics` — per-model counters folded from
  :class:`repro.obs.trace.RunTrace` request telemetry;
* :mod:`repro.serve.client` — the thin stdlib client the tests and CI
  smoke use.

See ``docs/SERVING.md`` for the HTTP contract.
"""

from repro.serve.cache import CachedDraw, DrawCache, body_etag, draw_key
from repro.serve.client import ServeClient, ServeResponse
from repro.serve.metrics import ServeMetrics
from repro.serve.queue import DrawExecutor, DrawTimeoutError, QueueFullError
from repro.serve.registry import (
    LoadedModel,
    ModelRecord,
    ModelRegistry,
    QuarantinedModelError,
    UnknownModelError,
    content_version,
)
from repro.serve.server import (
    CONTENT_TYPES,
    KaminoServer,
    ServeConfig,
    make_server,
)

__all__ = [
    "CONTENT_TYPES",
    "CachedDraw",
    "DrawCache",
    "DrawExecutor",
    "DrawTimeoutError",
    "KaminoServer",
    "LoadedModel",
    "ModelRecord",
    "ModelRegistry",
    "QuarantinedModelError",
    "QueueFullError",
    "ServeClient",
    "ServeConfig",
    "ServeMetrics",
    "ServeResponse",
    "UnknownModelError",
    "body_etag",
    "content_version",
    "draw_key",
    "make_server",
]
