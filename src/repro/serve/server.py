"""``repro-kamino serve`` — the long-running synthesis service.

A stdlib-only HTTP server (``http.server.ThreadingHTTPServer``, no new
runtime dependencies) over the staged engine:

====================  ==================================================
``GET /healthz``      liveness + model count
``GET /models``       every registered (name, version): method, bytes,
                      ``supports_native_stream``, hot-cache residency
``POST /models``      register a server-local artifact (JSON body:
                      ``{"name", "model", "schema", "dcs"?}`` paths)
``GET /sample``       draw: ``?model=&version=&n=&seed=&format=csv|
                      parquet|arrow|feather`` — streamed through
                      :mod:`repro.io.stream` into the draw cache, served
                      with a strong ETag (``If-None-Match`` ⇒ 304)
``GET /metrics``      Prometheus text (``?format=json`` for the JSON
                      view with recent draw traces)
====================  ==================================================

The request path composes the serve layers: the **registry** resolves
and lazily loads artifacts (single-flight, LRU hot cache), the
**executor** coalesces identical renders and applies backpressure (429
when the queue is full, 503 on timeout), and the **draw cache** turns
the Philox determinism guarantee — a draw is a pure function of
``(model bytes, n, seed)`` — into immutable cached responses that
revalidate by ETag without touching the engine.  Renders thread a
:class:`repro.obs.trace.RunTrace` through the draw and fold it into
``/metrics``.
"""

from __future__ import annotations

import csv
import errno
import io
import json
import os
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.faults import FaultInjected
from repro.io.stream import (
    STREAM_SUFFIXES, decode_columns, write_table_stream,
)
from repro.obs import RunTrace
from repro.serve.cache import DEFAULT_MAX_BYTES, DrawCache, draw_key
from repro.serve.metrics import ServeMetrics
from repro.serve.queue import (
    DrawExecutor, DrawTimeoutError, QueueFullError,
)
from repro.serve.registry import (
    ModelRegistry, QuarantinedModelError, UnknownModelError,
)
from repro.synth.protocol import sliced_chunks
from repro.synth.registry import BackendUnavailable

#: Response formats the ``format=`` query accepts, with content types.
CONTENT_TYPES = {
    "csv": "text/csv; charset=utf-8",
    "parquet": "application/vnd.apache.parquet",
    "arrow": "application/vnd.apache.arrow.file",
    "feather": "application/vnd.apache.arrow.file",
}

#: Cached responses are immutable (content-addressed model + pure draw),
#: so clients may cache them forever.
_CACHE_CONTROL = "public, max-age=31536000, immutable"

_SEND_CHUNK = 1 << 16


class ServeConfig:
    """Validated knobs of one server instance."""

    def __init__(self, models_dir: str, cache_dir: str | None = None,
                 host: str = "127.0.0.1", port: int = 8765,
                 hot_limit: int = 8,
                 cache_max_bytes: int = DEFAULT_MAX_BYTES,
                 max_pending: int = 16, timeout: float = 120.0,
                 workers: int | None = None, pool: str | None = None,
                 chunk_rows: int | None = None, quiet: bool = False):
        self.models_dir = models_dir
        self.cache_dir = cache_dir or os.path.join(models_dir, "_cache")
        self.host = host
        self.port = int(port)
        self.hot_limit = int(hot_limit)
        self.cache_max_bytes = int(cache_max_bytes)
        self.max_pending = int(max_pending)
        self.timeout = float(timeout)
        #: Worker count for Kamino draws (None: the fitted config's own;
        #: 0: auto from cpu_count) — pure scheduling, never changes a
        #: drawn byte, so cached and fresh responses always agree.
        self.workers = None if workers is None else int(workers)
        self.pool = pool
        self.chunk_rows = None if chunk_rows is None else int(chunk_rows)
        self.quiet = bool(quiet)


class KaminoServer(ThreadingHTTPServer):
    """The composed service: registry + cache + executor + metrics."""

    daemon_threads = True

    def __init__(self, config: ServeConfig):
        self.config = config
        self.registry = ModelRegistry(config.models_dir,
                                      hot_limit=config.hot_limit)
        self.draw_cache = DrawCache(config.cache_dir,
                                    max_bytes=config.cache_max_bytes)
        self.executor = DrawExecutor(max_pending=config.max_pending,
                                     timeout=config.timeout)
        self.metrics = ServeMetrics()
        super().__init__((config.host, config.port), _Handler)

    @property
    def base_url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # -- the render path ------------------------------------------------
    def render_draw(self, record, n, seed, fmt: str):
        """Materialize one deterministic draw into the cache.

        Runs on exactly one thread per in-flight key (executor
        coalescing); returns the committed :class:`CachedDraw`.
        """
        loaded = self.registry.get(record.name, record.version)
        trace = RunTrace(label=f"{record.name}:{record.version}")
        tmp = self.draw_cache.begin(draw_key(record.version, n, seed, fmt))
        start = time.perf_counter()
        try:
            chunks = self._deadline_chunks(
                self._draw_chunks(loaded, n, seed, trace), start,
                f"{record.name}:{record.version}")
            rows = write_table_stream(tmp, loaded.relation, chunks,
                                      fmt=fmt)
        except BaseException:
            self.draw_cache.discard(tmp)
            raise
        seconds = time.perf_counter() - start
        entry = self.draw_cache.put(
            draw_key(record.version, n, seed, fmt), tmp,
            content_type=CONTENT_TYPES[fmt])
        self.metrics.observe_draw(f"{record.name}:{record.version}",
                                  rows, seconds, trace=trace)
        return entry

    def _draw_chunks(self, loaded, n, seed, trace):
        """The table chunks of one draw, honoring the server's
        scheduling config.

        Default: the backend's ``sample_stream`` (bounded memory on
        native streamers).  With ``workers`` configured, Kamino models
        draw single-shot through the sharded blocked engine instead —
        bit-identical either way (scheduling knobs never change a
        cell), so the cache stays coherent across configs.
        """
        cfg = self.config
        fitted = loaded.fitted
        native = getattr(fitted, "fitted", None)
        if (cfg.workers is not None and cfg.workers != 1
                and loaded.record.method == "kamino" and native is not None):
            result = native.sample(n=n, seed=seed, workers=cfg.workers,
                                   pool=cfg.pool, trace=trace)
            n_out = result.table.n
            chunk = cfg.chunk_rows or n_out or 1
            return sliced_chunks(result.table, loaded.relation, n_out,
                                 chunk)
        return fitted.sample_stream(n=n, seed=seed,
                                    chunk_rows=cfg.chunk_rows,
                                    trace=trace)

    def _deadline_chunks(self, chunks, started: float, label: str):
        """Bound one render by the request timeout.

        The executor bounds how long a request *waits*; this bounds how
        long a render *runs* — checked between chunks, so a runaway
        draw stops within one chunk of the deadline instead of holding
        the per-model lock (and a worker thread) indefinitely.
        """
        budget = self.config.timeout
        for chunk in chunks:
            if time.perf_counter() - started > budget:
                self.metrics.observe_event("render_deadline_exceeded")
                raise DrawTimeoutError(
                    f"render of {label} exceeded the {budget:g}s "
                    f"request deadline")
            yield chunk


class _Handler(BaseHTTPRequestHandler):
    server: KaminoServer
    protocol_version = "HTTP/1.1"

    # -- routing --------------------------------------------------------
    def do_GET(self):
        url = urlsplit(self.path)
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        try:
            if url.path == "/healthz":
                self._healthz()
            elif url.path == "/models":
                self._list_models()
            elif url.path == "/metrics":
                self._metrics(query)
            elif url.path == "/sample":
                self._sample(query)
            else:
                self._send_error(404, f"no route {url.path!r}")
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:
            self._last_resort_500(exc)

    def do_POST(self):
        url = urlsplit(self.path)
        try:
            if url.path == "/models":
                self._register(self._read_json())
            else:
                self._send_error(404, f"no route {url.path!r}")
        except BrokenPipeError:
            pass
        except Exception as exc:
            self._last_resort_500(exc)

    # -- endpoints ------------------------------------------------------
    def _healthz(self):
        self._send_json(200, {
            "status": "ok",
            "models": len(self.server.registry.model_names()),
        })

    def _list_models(self):
        self._send_json(200, {"models": self.server.registry.list_models()})

    def _metrics(self, query):
        server = self.server
        cache_stats = server.draw_cache.stats()
        queue_stats = server.executor.stats()
        loaded = len(server.registry.hot_keys())
        if query.get("format") == "json":
            self._send_json(200, server.metrics.snapshot(
                cache_stats, queue_stats, loaded))
            return
        body = server.metrics.render_prometheus(
            cache_stats, queue_stats, loaded).encode()
        self._send_bytes(200, body,
                         "text/plain; version=0.0.4; charset=utf-8")

    def _register(self, payload: dict):
        try:
            name = payload["name"]
            model = payload["model"]
            schema = payload["schema"]
        except (KeyError, TypeError):
            self._send_error(
                400, "body must be JSON with 'name', 'model', and "
                     "'schema' (server-local paths); optional 'dcs'")
            return
        try:
            record = self.server.registry.register(
                name, model, schema, dcs_path=payload.get("dcs"))
        except (FileNotFoundError, ValueError) as exc:
            self._send_error(400, f"cannot register: {exc}")
            return
        self.server.metrics.observe_request(name, 201)
        self._send_json(201, {
            "name": record.name,
            "version": record.version,
            "method": record.method,
            "bytes": record.nbytes,
        }, count=False)

    def _sample(self, query):
        server = self.server
        model = query.get("model")
        if not model:
            self._send_error(400, "sample needs ?model=<name>")
            return
        try:
            n = _int_or_none(query.get("n"), "n")
            seed = _int_or_none(query.get("seed"), "seed")
            fmt = query.get("format", "csv")
            if fmt not in CONTENT_TYPES:
                raise ValueError(
                    f"format must be one of "
                    f"{sorted(CONTENT_TYPES)}, got {fmt!r}")
            record = server.registry.resolve(model, query.get("version"))
        except ValueError as exc:
            self._send_error(400, str(exc), model=model)
            return
        except UnknownModelError as exc:
            self._send_error(404, str(exc.args[0]), model=model)
            return
        key = draw_key(record.version, n, seed, fmt)
        entry = server.draw_cache.get(key)
        cache_state = "hit"
        if entry is None:
            cache_state = "miss"
            try:
                entry = server.executor.run(
                    key, (record.name, record.version),
                    lambda: server.render_draw(record, n, seed, fmt))
            except QueueFullError as exc:
                self._send_error(429, str(exc), model=model,
                                 retry_after=1)
                return
            except DrawTimeoutError as exc:
                self._send_error(503, str(exc), model=model,
                                 retry_after=5)
                return
            except QuarantinedModelError as exc:
                # The artifact failed digest/load verification and is
                # fenced off — a clean 503 naming the reason, never a
                # traceback.  Other versions of the model still serve.
                server.metrics.observe_event("quarantine_rejects")
                self._send_error(503, str(exc), model=model)
                return
            except BackendUnavailable as exc:
                self._send_error(501, str(exc), model=model)
                return
            except FaultInjected as exc:
                self._send_error(500, f"injected fault: {exc}",
                                 model=model)
                return
            except OSError as exc:
                if exc.errno == errno.ENOSPC:
                    # Cache disk is full: serve the draw anyway, just
                    # without caching it.
                    self._sample_degraded(record, n, seed, fmt, model)
                    return
                self._send_error(500, f"{type(exc).__name__}: {exc}",
                                 model=model)
                return
            except RuntimeError as exc:
                # e.g. a columnar format without pyarrow installed, or
                # a stream path the engine declines (PrefixScanRequired)
                self._send_error(501, str(exc), model=model)
                return
            except Exception as exc:
                # Anything else: a clean JSON 500 instead of a dropped
                # connection and a handler traceback.
                self._send_error(500, f"{type(exc).__name__}: {exc}",
                                 model=model)
                return
        if_none_match = self.headers.get("If-None-Match")
        if if_none_match and _etag_matches(if_none_match, entry.etag):
            server.metrics.observe_request(model, 304)
            self.send_response(304)
            self.send_header("ETag", entry.etag)
            self.send_header("Cache-Control", _CACHE_CONTROL)
            self.send_header("X-Cache", cache_state)
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        server.metrics.observe_request(model, 200)
        self.send_response(200)
        self.send_header("Content-Type", entry.content_type)
        self.send_header("Content-Length", str(entry.nbytes))
        self.send_header("ETag", entry.etag)
        self.send_header("Cache-Control", _CACHE_CONTROL)
        self.send_header("X-Cache", cache_state)
        self.send_header("X-Model-Version", record.version)
        self.end_headers()
        with open(entry.path, "rb") as f:
            for block in iter(lambda: f.read(_SEND_CHUNK), b""):
                self.wfile.write(block)

    def _sample_degraded(self, record, n, seed, fmt, model):
        """Serve a draw with the cache disk full: stream it uncached.

        CSV can be rendered chunk-by-chunk straight onto the socket
        (chunked transfer encoding, ``X-Cache: bypass``, no ETag — the
        response is correct but not revalidatable).  The columnar
        formats need a seekable file, which is exactly what we don't
        have, so they get a 503 asking the client to retry as CSV.
        """
        server = self.server
        if fmt != "csv":
            self._send_error(
                503, f"draw cache is out of disk space and {fmt!r} "
                     f"cannot be streamed uncached; retry with "
                     f"format=csv or free space", model=model,
                retry_after=30)
            return
        try:
            loaded = server.registry.get(record.name, record.version)
            chunks = server._draw_chunks(loaded, n, seed, None)
        except Exception as exc:
            self._send_error(500, f"{type(exc).__name__}: {exc}",
                             model=model)
            return
        server.metrics.observe_event("degraded_streams")
        server.metrics.observe_request(model, 200)
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPES["csv"])
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("X-Cache", "bypass")
        self.send_header("X-Model-Version", record.version)
        self.end_headers()
        try:
            for payload in _csv_payloads(loaded.relation, chunks):
                if not payload:
                    continue
                self.wfile.write(f"{len(payload):x}\r\n".encode())
                self.wfile.write(payload)
                self.wfile.write(b"\r\n")
            self.wfile.write(b"0\r\n\r\n")
        except BrokenPipeError:
            raise
        except Exception:
            # Headers are gone; the only honest signal left is a
            # truncated chunked body, which clients reject.
            self.close_connection = True

    # -- plumbing -------------------------------------------------------
    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw or b"{}")
        except ValueError:
            return {}

    def _send_json(self, status: int, doc: dict, count: bool = True):
        if count:
            self.server.metrics.observe_request(None, status)
        body = (json.dumps(doc, indent=2) + "\n").encode()
        self._send_bytes(status, body, "application/json")

    def _send_bytes(self, status: int, body: bytes, content_type: str):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _last_resort_500(self, exc: BaseException):
        """A clean JSON 500 for anything a route let escape.

        If the response already started (headers sent, body partially
        written) this may append bytes a client discards — still better
        than an unhandled-exception traceback and a hard reset.
        """
        try:
            self._send_error(500, f"{type(exc).__name__}: {exc}")
        except Exception:
            self.close_connection = True

    def _send_error(self, status: int, message: str,
                    model: str | None = None,
                    retry_after: int | None = None):
        self.server.metrics.observe_request(model, status)
        body = (json.dumps({"error": message}) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):  # silenced by config.quiet
        if not self.server.config.quiet:
            super().log_message(fmt, *args)


def _csv_payloads(relation, chunks):
    """CSV bytes of a streamed draw, one payload per table chunk (plus
    a leading header payload) — the degraded, cache-bypassing render."""
    buf = io.StringIO()
    csv.writer(buf).writerow(relation.names)
    yield buf.getvalue().encode()
    for table in chunks:
        buf = io.StringIO()
        decoded = decode_columns(table)
        columns = [decoded[name].tolist() for name in relation.names]
        csv.writer(buf).writerows(zip(*columns))
        yield buf.getvalue().encode()


def _int_or_none(raw: str | None, name: str) -> int | None:
    if raw is None or raw == "":
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") \
            from None
    if name == "n" and value < 0:
        raise ValueError(f"n must be >= 0, got {value}")
    return value


def _etag_matches(header: str, etag: str) -> bool:
    """Does an ``If-None-Match`` header name ``etag`` (or ``*``)?"""
    tags = {tag.strip() for tag in header.split(",")}
    return "*" in tags or etag in tags


def make_server(models_dir: str, **kwargs) -> KaminoServer:
    """Build (and bind) a server; ``port=0`` picks a free port."""
    return KaminoServer(ServeConfig(models_dir, **kwargs))


# Formats the CLI help can promise == the stream writer's suffixes.
assert set(CONTENT_TYPES) == {fmt for fmt in STREAM_SUFFIXES.values()}
