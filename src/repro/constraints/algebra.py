"""Denial-constraint set algebra: normalization and minimization.

Approximate DC discovery (Experiment 8) and hand-written constraint
sets both produce redundancy: duplicated constraints up to predicate
order or tuple-variable naming, trivially unsatisfiable predicates, and
FDs implied by other FDs.  Since the constraint-aware sampler's cost is
linear in the number of DCs (Figure 8), trimming the set before
synthesis is a direct speedup with zero semantic change.

* :func:`normalize_dc` — canonical predicate form (i-side first,
  predicates sorted), making syntactic equality meaningful;
* :func:`is_trivial` — detects DCs that can never be violated (e.g. a
  predicate ``ti.A < ti.A``), which are safe to drop;
* :func:`fd_closure` — attribute-set closure under a set of FDs
  (Armstrong axioms);
* :func:`implied_fd` — does a set of FDs imply ``X -> y``?
* :func:`minimize_dcs` — drop duplicates, trivial DCs, and implied FDs.
"""

from __future__ import annotations

from repro.constraints.dc import DenialConstraint
from repro.constraints.predicate import (
    CONST,
    Operator,
    Predicate,
    TUPLE_I,
    TUPLE_J,
)

#: Operators whose ``a op a`` is False for every value — a predicate
#: comparing an attribute to itself on the *same* tuple variable with
#: one of these can never hold, so its DC can never be violated.
_IRREFLEXIVE = {Operator.NE, Operator.GT, Operator.LT}


def _predicate_key(p: Predicate) -> tuple:
    """A canonical, hashable form of a predicate.

    Cross-tuple predicates are oriented so the i-side is on the left
    (``tj.A > ti.B`` becomes ``ti.B < tj.A``); for symmetric operators
    on the same attribute the orientation is irrelevant and normalizes
    identically.
    """
    if p.rhs_var == CONST:
        return ("const", p.lhs_attr, p.op.value, repr(p.const))
    lhs_var, lhs_attr, op = p.lhs_var, p.lhs_attr, p.op
    rhs_var, rhs_attr = p.rhs_var, p.rhs_attr
    if lhs_var == TUPLE_J and rhs_var == TUPLE_I:
        lhs_var, rhs_var = rhs_var, lhs_var
        lhs_attr, rhs_attr = rhs_attr, lhs_attr
        op = op.flip()
    if (lhs_var == rhs_var or (op in (Operator.EQ, Operator.NE)
                               and lhs_attr > rhs_attr)):
        # Same-variable comparisons and symmetric operators get a
        # stable attribute order too.
        if lhs_attr > rhs_attr and op in (Operator.EQ, Operator.NE):
            lhs_attr, rhs_attr = rhs_attr, lhs_attr
    return ("cross", lhs_var, lhs_attr, op.value, rhs_var, rhs_attr)


def dc_signature(dc: DenialConstraint) -> frozenset:
    """Order-insensitive signature of a DC's predicate conjunction.

    Two DCs with equal signatures violate exactly the same tuple
    (pairs); for binary DCs the i/j renaming symmetry is also folded in
    by taking the lexicographically smaller of the two orientations.
    """
    direct = frozenset(_predicate_key(p) for p in dc.predicates)
    swapped = frozenset(_predicate_key(p.swapped()) for p in dc.predicates)
    return min(direct, swapped, key=lambda s: sorted(map(str, s)))


def is_trivial(dc: DenialConstraint) -> bool:
    """True if the DC can never be violated (always satisfied).

    Detects two syntactic certificates:

    * a predicate comparing an attribute with itself on the same tuple
      variable under an irreflexive operator (``ti.A != ti.A``);
    * a contradictory predicate pair within the conjunction
      (``ti.A = tj.A`` together with ``ti.A != tj.A``).
    """
    keys = set()
    for p in dc.predicates:
        if (not p.is_constant and p.lhs_var == p.rhs_var
                and p.lhs_attr == p.rhs_attr and p.op in _IRREFLEXIVE):
            return True
        keys.add(_predicate_key(p))
    for p in dc.predicates:
        if p.is_constant:
            continue
        negated = Predicate(p.lhs_var, p.lhs_attr, p.op.negate(),
                            p.rhs_var, p.rhs_attr)
        if _predicate_key(negated) in keys:
            return True
    return False


def fd_closure(attrs, fds) -> set[str]:
    """Closure of an attribute set under FDs (Armstrong axioms).

    ``fds`` is an iterable of ``(determinant_tuple, dependent)`` pairs.
    Standard fixed-point iteration: X+ grows while some FD's determinant
    is inside it.
    """
    closure = set(attrs)
    changed = True
    while changed:
        changed = False
        for determinant, dependent in fds:
            if dependent not in closure and set(determinant) <= closure:
                closure.add(dependent)
                changed = True
    return closure


def implied_fd(determinant, dependent: str, fds) -> bool:
    """Does the FD set imply ``determinant -> dependent``?"""
    return dependent in fd_closure(determinant, fds)


def minimize_dcs(dcs) -> list[DenialConstraint]:
    """Drop trivial, duplicate, and implied-FD constraints.

    Keeps the input order of the survivors.  Non-FD constraints are kept
    unless trivial or duplicated; FD-shaped constraints are additionally
    dropped when the *other* kept FDs already imply them (checked
    smallest-determinant-first so the most economical FDs survive).
    Hardness is respected: a hard DC is never dropped in favour of an
    equivalent soft one.
    """
    seen: dict[frozenset, DenialConstraint] = {}
    kept: list[DenialConstraint] = []
    for dc in dcs:
        if is_trivial(dc):
            continue
        signature = dc_signature(dc)
        previous = seen.get(signature)
        if previous is not None:
            if dc.hard and not previous.hard:
                kept[kept.index(previous)] = dc
                seen[signature] = dc
            continue
        seen[signature] = dc
        kept.append(dc)

    # FD implication pruning among the hard FDs (soft FDs carry weight
    # information the sampler uses, so implication does not make them
    # redundant).  Minimal-cover style: each FD is tested against all
    # other *surviving* FDs; widest determinants are tried first so the
    # most economical FDs are kept.
    fd_shaped = [(dc, dc.as_fd()) for dc in kept]
    hard_fds = [(dc, shape) for dc, shape in fd_shaped
                if shape is not None and dc.hard]
    hard_fds.sort(key=lambda item: (-len(item[1][0]), item[0].name))
    dropped: set[str] = set()
    for dc, (determinant, dependent) in hard_fds:
        basis = [shape for other, shape in hard_fds
                 if other.name != dc.name and other.name not in dropped]
        if implied_fd(determinant, dependent, basis):
            dropped.add(dc.name)
    return [dc for dc in kept if dc.name not in dropped]
