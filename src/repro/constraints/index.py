"""Incremental violation indexes — the sampler/repair hot-path engine.

Counting denial-constraint violations is the single hottest operation in
the system: Algorithm 3 probes ``|V(phi, t_i + v | D_:i)|`` for every
candidate value of every cell, Algorithm 5 needs the per-tuple violation
matrix, and the Figure 1 cleaning baseline re-counts after every repair
pass.  The scan-based engine in :mod:`repro.constraints.violations`
re-evaluates the predicate conjunction against the whole prefix each
time — O(prefix) per probe, O(n^2) per column.

This module maintains *incremental* per-DC state instead, so that
appending a tuple, removing a tuple, or rewriting a cell updates the
index in (amortised) group-local time, and a candidate probe costs
O(group) instead of O(prefix):

* :class:`FDViolationIndex` — hash-bucket group index for FD-shaped DCs
  (``X -> y``), hard *or* soft.  Per determinant group it tracks the
  group size and a dependent-value histogram; the number of new
  violations a candidate ``v`` creates is ``size(X) - count(X, v)``.
  This generalises the forced-value ``FDIndex`` fast path of
  Experiment 10 from hard FDs to violation *counts*.
* :class:`OrderViolationIndex` — sorted-structure index for
  conditional-order DCs (``not(E= and A> and B<)``).  Per equality
  group it keeps the (A, B) points; a probe splits the group on the
  fixed partner value and binary-searches the sorted target values, so
  ``d`` candidates cost O(g log g + d log g).
* :class:`UnaryViolationIndex` — violations depend only on the tuple
  itself; the index just maintains the running total.
* :class:`GenericViolationIndex` — cached blocked-numpy fallback for
  arbitrary binary DCs: it references the live column arrays, caches
  the full blocked O(n^2) count, and invalidates the cache on change.

All indexes produce counts **bit-identical** to the scan-based
functions (``count_violations``, ``multi_candidate_violation_counts``,
``violation_matrix``); ``tests/test_violation_index.py`` asserts this on
randomized tables.  Consumers: :mod:`repro.core.sampling` (Algorithm 3
and the MCMC refinement), :mod:`repro.baselines.cleaning` (repair
passes), and :func:`repro.constraints.violations.violation_matrix`
(Algorithm 5).

Group keys are built from the *original* stored scalars (int codes stay
ints), never cast through float64 — so int64 keys above 2**53 cannot
collide.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.dc import DenialConstraint


def _item(value):
    """Convert a numpy scalar to a hashable python scalar."""
    return value.item() if hasattr(value, "item") else value


class ViolationIndex:
    """Base class: incremental violation state for one DC.

    The indexed instance is a multiset of tuples fed in via
    :meth:`append_from` / :meth:`remove_from` (rows of a shared column
    dict) and edited via :meth:`rewrite_cell`.  ``total()`` is the
    current ``|V(phi, D)|`` under the paper's counting conventions
    (tuples for unary DCs, unordered pairs for binary DCs).
    """

    #: Whether :meth:`candidate_counts` can answer probes (otherwise the
    #: caller falls back to the scan engine).
    supports_candidates = False
    #: Whether :meth:`remove_from` is implemented.
    supports_removal = False

    def __init__(self, dc: DenialConstraint):
        self.dc = dc

    # -- lifecycle -----------------------------------------------------
    def reset(self) -> None:
        raise NotImplementedError

    def build(self, cols: dict, n: int) -> None:
        """Index the first ``n`` rows of ``cols`` from scratch."""
        self.reset()
        for i in range(n):
            self.append_from(cols, i)

    def append_from(self, cols: dict, i: int) -> None:
        """Add row ``i`` of ``cols`` to the indexed instance."""
        raise NotImplementedError

    def remove_from(self, cols: dict, i: int) -> None:
        """Remove row ``i`` (its *current* values) from the instance."""
        raise NotImplementedError

    def rewrite_cell(self, cols: dict, i: int, attr: str, old_value) -> None:
        """Row ``i``'s cell ``attr`` changed from ``old_value`` to its
        current value in ``cols``; update the index."""
        row_new = {a: cols[a][i] for a in self.dc.attributes}
        row_old = dict(row_new)
        row_old[attr] = old_value
        self._remove_row(row_old)
        self._add_row(row_new)

    # -- queries -------------------------------------------------------
    def total(self) -> int:
        raise NotImplementedError

    def candidate_counts(self, target_values: dict | None,
                         context: dict) -> np.ndarray | None:
        """New-violation counts per candidate against the indexed rows.

        Same contract as
        :func:`~repro.constraints.violations.multi_candidate_violation_counts`
        (the indexed rows play the role of ``prefix_cols``).  Returns
        None when this index cannot answer the probe exactly — the
        caller must then fall back to the scan engine.
        """
        return None

    # -- internals -----------------------------------------------------
    def _add_row(self, row: dict) -> None:
        raise NotImplementedError

    def _remove_row(self, row: dict) -> None:
        raise NotImplementedError


# ----------------------------------------------------------------------
# FD-shaped DCs
# ----------------------------------------------------------------------
class FDViolationIndex(ViolationIndex):
    """Hash-bucket group index for an FD-shaped DC ``X -> y``.

    State per determinant key: group size and a histogram of dependent
    values.  Appending a tuple with key ``k`` and dependent ``v``
    creates ``size(k) - count(k, v)`` new violating pairs, which is an
    O(1) dict probe — and exactly what the scan engine counts, because a
    pair violates an FD iff the determinants agree and the dependents
    differ (both orientations coincide).
    """

    supports_candidates = True
    supports_removal = True

    def __init__(self, dc: DenialConstraint):
        super().__init__(dc)
        fd = dc.as_fd()
        if fd is None:
            raise ValueError(f"DC {dc.name} is not FD-shaped")
        self.determinant, self.dependent = fd
        self.reset()

    def reset(self) -> None:
        #: key -> [group_size, {dep_value: count}]
        self._groups: dict[tuple, list] = {}
        self._total = 0
        self._n = 0

    def _key(self, row: dict) -> tuple:
        return tuple(_item(row[a]) for a in self.determinant)

    def append_from(self, cols: dict, i: int) -> None:
        self._add_row({a: cols[a][i] for a in self.dc.attributes})

    def remove_from(self, cols: dict, i: int) -> None:
        self._remove_row({a: cols[a][i] for a in self.dc.attributes})

    def _add_row(self, row: dict) -> None:
        key = self._key(row)
        dep = _item(row[self.dependent])
        group = self._groups.get(key)
        if group is None:
            group = [0, {}]
            self._groups[key] = group
        size, counts = group
        self._total += size - counts.get(dep, 0)
        group[0] = size + 1
        counts[dep] = counts.get(dep, 0) + 1
        self._n += 1

    def _remove_row(self, row: dict) -> None:
        key = self._key(row)
        dep = _item(row[self.dependent])
        group = self._groups[key]
        size, counts = group
        self._total -= size - counts.get(dep, 0)
        group[0] = size - 1
        if counts[dep] == 1:
            del counts[dep]
        else:
            counts[dep] -= 1
        if group[0] == 0:
            del self._groups[key]
        self._n -= 1

    def total(self) -> int:
        return self._total

    def __len__(self) -> int:
        return self._n

    def candidate_counts(self, target_values: dict | None,
                         context: dict) -> np.ndarray | None:
        if not target_values:
            row = {a: context[a] for a in self.dc.attributes}
            key = self._key(row)
            group = self._groups.get(key)
            if group is None:
                return np.zeros(1, dtype=np.int64)
            size, counts = group
            dep = _item(row[self.dependent])
            return np.array([size - counts.get(dep, 0)], dtype=np.int64)

        d = next(iter(target_values.values())).shape[0]
        det_in_targets = [a for a in self.determinant if a in target_values]
        if not det_in_targets and self.dependent in target_values:
            # Fast path: fixed determinant group, vector of dependents.
            key = tuple(_item(context[a]) for a in self.determinant)
            group = self._groups.get(key)
            if group is None:
                return np.zeros(d, dtype=np.int64)
            size, counts = group
            deps = target_values[self.dependent].tolist()
            return np.fromiter((size - counts.get(v, 0) for v in deps),
                               dtype=np.int64, count=d)

        # General path: the determinant key varies per candidate.
        det_cols = [
            (target_values[a].tolist() if a in target_values
             else [_item(context[a])] * d)
            for a in self.determinant]
        if self.dependent in target_values:
            dep_col = target_values[self.dependent].tolist()
        else:
            dep_col = [_item(context[self.dependent])] * d
        out = np.empty(d, dtype=np.int64)
        for c in range(d):
            key = tuple(col[c] for col in det_cols)
            group = self._groups.get(key)
            if group is None:
                out[c] = 0
            else:
                size, counts = group
                out[c] = size - counts.get(dep_col[c], 0)
        return out

    def dependents_of(self, key_row: dict) -> list:
        """Sorted distinct dependent values already bound to the
        determinant group of ``key_row`` (empty if the group is new)."""
        group = self._groups.get(self._key(key_row))
        if group is None:
            return []
        return sorted(group[1])


# ----------------------------------------------------------------------
# Conditional-order DCs
# ----------------------------------------------------------------------
class _OrderGroup:
    """The (A, B) points of one equality group.

    Backed by capacity-doubling numpy buffers so that appends are O(1)
    amortised and :meth:`arrays` is a zero-copy view — an eq-less order
    DC has a single group covering the whole prefix, and rebuilding its
    arrays per probe would be quadratic.
    """

    __slots__ = ("_a", "_b", "_n")

    def __init__(self):
        self._a = None
        self._b = None
        self._n = 0

    def arrays(self):
        if self._a is None:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty
        return self._a[:self._n], self._b[:self._n]

    @staticmethod
    def _grow(buf: np.ndarray) -> np.ndarray:
        out = np.empty(2 * buf.shape[0], dtype=buf.dtype)
        out[:buf.shape[0]] = buf
        return out

    def add(self, a, b) -> None:
        if self._a is None:
            dtype_a = np.int64 if isinstance(a, (int, np.integer)) \
                else np.float64
            dtype_b = np.int64 if isinstance(b, (int, np.integer)) \
                else np.float64
            self._a = np.empty(8, dtype=dtype_a)
            self._b = np.empty(8, dtype=dtype_b)
        elif self._n == self._a.shape[0]:
            self._a = self._grow(self._a)
            self._b = self._grow(self._b)
        self._a[self._n] = a
        self._b[self._n] = b
        self._n += 1

    def remove(self, a, b) -> None:
        # Multiset removal: drop one occurrence (swap-with-last + pop).
        a_arr, b_arr = self.arrays()
        hits = np.flatnonzero((a_arr == a) & (b_arr == b))
        if hits.size == 0:
            raise KeyError((a, b))
        p = int(hits[-1])
        last = self._n - 1
        self._a[p] = self._a[last]
        self._b[p] = self._b[last]
        self._n = last

    def __len__(self) -> int:
        return self._n


class OrderViolationIndex(ViolationIndex):
    """Sorted-structure index for ``not(E= and A> and B<)`` DCs.

    A pair violates iff the equality attributes agree and (A, B) are
    strictly discordant.  Per equality group the index stores the
    (A, B) points; a probe for candidates of one order attribute with
    the partner fixed splits the group into partner-below / partner-
    above halves, sorts the target values of each half once, and
    answers every candidate with two binary searches.
    """

    supports_candidates = True
    supports_removal = True

    def __init__(self, dc: DenialConstraint):
        super().__init__(dc)
        shape = dc.as_conditional_order()
        if shape is None:
            raise ValueError(f"DC {dc.name} is not conditional-order-shaped")
        self.eq_attrs, self.greater_attr, self.less_attr = shape
        self.reset()

    def reset(self) -> None:
        self._groups: dict[tuple, _OrderGroup] = {}
        self._total = 0
        self._n = 0

    def _key(self, row: dict) -> tuple:
        return tuple(_item(row[a]) for a in self.eq_attrs)

    def _discordant(self, group: _OrderGroup, a, b) -> int:
        """Strictly discordant pairs between (a, b) and the group."""
        a_arr, b_arr = group.arrays()
        lo = int(np.count_nonzero((a_arr < a) & (b_arr > b)))
        hi = int(np.count_nonzero((a_arr > a) & (b_arr < b)))
        return lo + hi

    def append_from(self, cols: dict, i: int) -> None:
        self._add_row({a: cols[a][i] for a in self.dc.attributes})

    def remove_from(self, cols: dict, i: int) -> None:
        self._remove_row({a: cols[a][i] for a in self.dc.attributes})

    def _add_row(self, row: dict) -> None:
        key = self._key(row)
        group = self._groups.get(key)
        if group is None:
            group = _OrderGroup()
            self._groups[key] = group
        a = _item(row[self.greater_attr])
        b = _item(row[self.less_attr])
        self._total += self._discordant(group, a, b)
        group.add(a, b)
        self._n += 1

    def _remove_row(self, row: dict) -> None:
        key = self._key(row)
        group = self._groups[key]
        a = _item(row[self.greater_attr])
        b = _item(row[self.less_attr])
        group.remove(a, b)
        self._total -= self._discordant(group, a, b)
        if not len(group):
            del self._groups[key]
        self._n -= 1

    def total(self) -> int:
        return self._total

    def __len__(self) -> int:
        return self._n

    def candidate_counts(self, target_values: dict | None,
                         context: dict) -> np.ndarray | None:
        if target_values:
            if any(a in target_values for a in self.eq_attrs):
                return None  # group varies per candidate: fall back
            in_targets = [a for a in (self.greater_attr, self.less_attr)
                          if a in target_values]
            if len(in_targets) != 1:
                return None  # both order attrs vary: fall back
            target = in_targets[0]
            cands = target_values[target]
            d = cands.shape[0]
        else:
            target = self.greater_attr
            cands = np.asarray([context[self.greater_attr]])
            d = 1

        row = {a: context[a] for a in self.eq_attrs}
        group = self._groups.get(self._key(row))
        if group is None:
            return np.zeros(d, dtype=np.int64)
        a_arr, b_arr = group.arrays()

        if target == self.greater_attr:
            partner = context[self.less_attr]
            # p violates with candidate a_c iff
            # (a_p < a_c and b_p > partner) or (a_p > a_c and b_p < partner)
            below_t = np.sort(a_arr[b_arr > partner])
            above_t = np.sort(a_arr[b_arr < partner])
        else:
            partner = context[self.greater_attr]
            # p violates with candidate b_c iff
            # (b_p > b_c and a_p < partner) or (b_p < b_c and a_p > partner)
            below_t = np.sort(b_arr[a_arr > partner])
            above_t = np.sort(b_arr[a_arr < partner])
        counts = np.searchsorted(below_t, cands, side="left")
        counts = counts + (above_t.size
                           - np.searchsorted(above_t, cands, side="right"))
        return counts.astype(np.int64)

    def group_points(self, key_row: dict):
        """The indexed (A, B) point arrays of ``key_row``'s equality
        group, or None if the group is empty (views — do not mutate)."""
        group = self._groups.get(self._key(key_row))
        if group is None:
            return None
        return group.arrays()


# ----------------------------------------------------------------------
# Unary DCs
# ----------------------------------------------------------------------
class UnaryViolationIndex(ViolationIndex):
    """Running total for a unary DC (violations are per-tuple)."""

    supports_candidates = True
    supports_removal = True

    def __init__(self, dc: DenialConstraint):
        super().__init__(dc)
        if not dc.is_unary:
            raise ValueError(f"DC {dc.name} is not unary")
        self.reset()

    def reset(self) -> None:
        self._total = 0
        self._n = 0

    def _violates(self, row: dict) -> bool:
        for pred in self.dc.predicates:
            if not bool(pred.evaluate(lambda var, attr: row[attr])):
                return False
        return True

    def append_from(self, cols: dict, i: int) -> None:
        self._add_row({a: cols[a][i] for a in self.dc.attributes})

    def remove_from(self, cols: dict, i: int) -> None:
        self._remove_row({a: cols[a][i] for a in self.dc.attributes})

    def _add_row(self, row: dict) -> None:
        self._total += int(self._violates(row))
        self._n += 1

    def _remove_row(self, row: dict) -> None:
        self._total -= int(self._violates(row))
        self._n -= 1

    def total(self) -> int:
        return self._total

    def __len__(self) -> int:
        return self._n

    def candidate_counts(self, target_values: dict | None,
                         context: dict) -> np.ndarray | None:
        from repro.constraints.violations import (
            multi_candidate_violation_counts,
        )
        # Unary violations ignore the indexed rows entirely; delegate to
        # the (cheap, O(d)) scan evaluation for exact agreement.
        return multi_candidate_violation_counts(self.dc, target_values,
                                                context, {})


# ----------------------------------------------------------------------
# Generic binary DCs
# ----------------------------------------------------------------------
class GenericViolationIndex(ViolationIndex):
    """Cached blocked-numpy fallback for arbitrary binary DCs.

    Holds references to the live column arrays plus a row count; the
    full blocked O(n^2) total is computed lazily and cached until the
    instance changes.  Candidate probes delegate to the scan engine over
    the referenced prefix (there is no exploitable group structure), so
    results match the scan path exactly.
    """

    def __init__(self, dc: DenialConstraint):
        super().__init__(dc)
        self._cols: dict | None = None
        self.reset()

    def reset(self) -> None:
        self._n = 0
        self._cached_total: int | None = None

    def build(self, cols: dict, n: int) -> None:
        self.reset()
        self._cols = cols
        self._n = n

    def append_from(self, cols: dict, i: int) -> None:
        if self._cols is None:
            self._cols = cols
        self._n = max(self._n, i + 1)
        self._cached_total = None

    def rewrite_cell(self, cols: dict, i: int, attr: str, old_value) -> None:
        self._cached_total = None

    def total(self) -> int:
        if self._n == 0 or self._cols is None:
            return 0
        if self._cached_total is None:
            cols = {a: self._cols[a][:self._n] for a in self.dc.attributes}
            self._cached_total = _blocked_pair_count(self.dc, cols)
        return self._cached_total

    def __len__(self) -> int:
        return self._n


def _blocked_pair_count(dc: DenialConstraint, cols: dict) -> int:
    """Blocked O(n^2) unordered-pair count over a column dict.

    The single generic pair-counting kernel: ``count_violations``
    delegates its non-FD binary branch here, so index totals and scan
    totals share one implementation by construction.
    """
    from repro.constraints.violations import _BLOCK, _pair_mask
    n = next(iter(cols.values())).shape[0]
    total = 0
    for a0 in range(0, n, _BLOCK):
        a1 = min(a0 + _BLOCK, n)
        block_a = {k: v[a0:a1] for k, v in cols.items()}
        for b0 in range(a0, n, _BLOCK):
            b1 = min(b0 + _BLOCK, n)
            block_b = {k: v[b0:b1] for k, v in cols.items()}
            either = (_pair_mask(dc, block_a, block_b)
                      | _pair_mask(dc, block_b, block_a).T)
            if a0 == b0:
                # Same diagonal block: count strictly-upper pairs only.
                either = np.triu(either, k=1)
            total += int(either.sum())
    return total


def _blocked_row_counts(dc: DenialConstraint, cols: dict) -> np.ndarray:
    """Per-row participation counts via blocked pairwise evaluation."""
    from repro.constraints.violations import _BLOCK, _pair_mask
    n = next(iter(cols.values())).shape[0]
    out = np.zeros(n, dtype=np.int64)
    for a0 in range(0, n, _BLOCK):
        a1 = min(a0 + _BLOCK, n)
        block_a = {k: v[a0:a1] for k, v in cols.items()}
        row_counts = np.zeros(a1 - a0, dtype=np.int64)
        for b0 in range(0, n, _BLOCK):
            b1 = min(b0 + _BLOCK, n)
            block_b = {k: v[b0:b1] for k, v in cols.items()}
            either = (_pair_mask(dc, block_a, block_b)
                      | _pair_mask(dc, block_b, block_a).T)
            if a0 == b0:
                np.fill_diagonal(either, False)
            row_counts += either.sum(axis=1)
        out[a0:a1] = row_counts
    return out


# ----------------------------------------------------------------------
# Factory + per-row counting (Algorithm 5)
# ----------------------------------------------------------------------
def build_index(dc: DenialConstraint) -> ViolationIndex:
    """The most specific index for a DC's structural shape."""
    if dc.is_unary:
        return UnaryViolationIndex(dc)
    if dc.as_fd() is not None:
        return FDViolationIndex(dc)
    if dc.as_conditional_order() is not None:
        return OrderViolationIndex(dc)
    return GenericViolationIndex(dc)


def per_row_violation_counts(dc: DenialConstraint, table) -> np.ndarray:
    """``V[i] = |V(phi, t_i | D - {t_i})|`` for every tuple (one column
    of Algorithm 5's violation matrix), using the shape-specific fast
    path: group arithmetic for FDs, group-restricted blocked evaluation
    for conditional-order DCs, full blocked evaluation otherwise.
    """
    from repro.constraints.violations import _unary_mask, group_inverse
    cols = {a: table.column(a) for a in dc.attributes}
    n = table.n
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if dc.is_unary:
        return _unary_mask(dc, cols).astype(np.int64)
    fd = dc.as_fd()
    if fd is not None:
        lhs, rhs = fd
        key_cols = [table.column(a) for a in lhs]
        lhs_inv, lhs_counts = group_inverse(key_cols)
        full_inv, full_counts = group_inverse(key_cols + [table.column(rhs)])
        return (lhs_counts[lhs_inv] - full_counts[full_inv]).astype(np.int64)
    shape = dc.as_conditional_order()
    if shape is not None and shape[0]:
        eq_attrs = shape[0]
        inverse, _ = group_inverse([table.column(a) for a in eq_attrs])
        out = np.zeros(n, dtype=np.int64)
        order = np.argsort(inverse, kind="stable")
        bounds = np.flatnonzero(np.diff(inverse[order])) + 1
        for rows in np.split(order, bounds):
            sub = {a: c[rows] for a, c in cols.items()}
            out[rows] = _blocked_row_counts(dc, sub)
        return out
    return _blocked_row_counts(dc, cols)
