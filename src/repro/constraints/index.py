"""Incremental violation indexes — the sampler/repair hot-path engine.

Counting denial-constraint violations is the single hottest operation in
the system: Algorithm 3 probes ``|V(phi, t_i + v | D_:i)|`` for every
candidate value of every cell, Algorithm 5 needs the per-tuple violation
matrix, and the Figure 1 cleaning baseline re-counts after every repair
pass.  The scan-based engine in :mod:`repro.constraints.violations`
re-evaluates the predicate conjunction against the whole prefix each
time — O(prefix) per probe, O(n^2) per column.

This module maintains *incremental* per-DC state instead, so that
appending a tuple, removing a tuple, or rewriting a cell updates the
index in (amortised) group-local time, and a candidate probe costs
O(group) instead of O(prefix):

* :class:`FDViolationIndex` — hash-bucket group index for FD-shaped DCs
  (``X -> y``), hard *or* soft.  Per determinant group it tracks the
  group size and a dependent-value histogram; the number of new
  violations a candidate ``v`` creates is ``size(X) - count(X, v)``.
  This generalises the forced-value ``FDIndex`` fast path of
  Experiment 10 from hard FDs to violation *counts*.
* :class:`OrderViolationIndex` — sorted-structure index for
  conditional-order DCs (``not(E= and A> and B<)``).  Per equality
  group it keeps the (A, B) points; a probe splits the group on the
  fixed partner value and binary-searches the sorted target values, so
  ``d`` candidates cost O(g log g + d log g).
* :class:`UnaryViolationIndex` — violations depend only on the tuple
  itself; the index just maintains the running total.
* :class:`GenericViolationIndex` — cached blocked-numpy fallback for
  arbitrary binary DCs: it references the live column arrays, caches
  the full blocked O(n^2) count, and invalidates the cache on change.

All indexes produce counts **bit-identical** to the scan-based
functions (``count_violations``, ``multi_candidate_violation_counts``,
``violation_matrix``); ``tests/test_violation_index.py`` asserts this on
randomized tables.  Consumers: :mod:`repro.core.sampling` (Algorithm 3
and the MCMC refinement), :mod:`repro.baselines.cleaning` (repair
passes), and :func:`repro.constraints.violations.violation_matrix`
(Algorithm 5).

Group keys are built from the *original* stored scalars (int codes stay
ints), never cast through float64 — so int64 keys above 2**53 cannot
collide.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.dc import DenialConstraint


def _item(value):
    """Convert a numpy scalar to a hashable python scalar."""
    return value.item() if hasattr(value, "item") else value


class ViolationIndex:
    """Base class: incremental violation state for one DC.

    The indexed instance is a multiset of tuples fed in via
    :meth:`append_from` / :meth:`remove_from` (rows of a shared column
    dict) and edited via :meth:`rewrite_cell`.  ``total()`` is the
    current ``|V(phi, D)|`` under the paper's counting conventions
    (tuples for unary DCs, unordered pairs for binary DCs).
    """

    #: Whether :meth:`candidate_counts` can answer probes (otherwise the
    #: caller falls back to the scan engine).
    supports_candidates = False
    #: Whether :meth:`remove_from` is implemented.
    supports_removal = False

    def __init__(self, dc: DenialConstraint):
        self.dc = dc
        #: Optional telemetry hook: a mutable mapping (e.g. the
        #: ``probes`` dict of a :class:`repro.obs.trace.ColumnTrace`)
        #: that probe methods bump by method name when attached.  None
        #: (the default) keeps the probes allocation- and branch-cheap —
        #: the zero-cost-when-off contract of :mod:`repro.obs`.
        self.counters: dict | None = None

    def _bump(self, key: str, inc: int = 1) -> None:
        c = self.counters
        if c is not None:
            c[key] = c.get(key, 0) + inc

    # -- lifecycle -----------------------------------------------------
    def reset(self) -> None:
        raise NotImplementedError

    def build(self, cols: dict, n: int) -> None:
        """Index the first ``n`` rows of ``cols`` from scratch."""
        self.reset()
        for i in range(n):
            self.append_from(cols, i)

    def append_from(self, cols: dict, i: int) -> None:
        """Add row ``i`` of ``cols`` to the indexed instance."""
        raise NotImplementedError

    def remove_from(self, cols: dict, i: int) -> None:
        """Remove row ``i`` (its *current* values) from the instance."""
        raise NotImplementedError

    def rewrite_cell(self, cols: dict, i: int, attr: str, old_value) -> None:
        """Row ``i``'s cell ``attr`` changed from ``old_value`` to its
        current value in ``cols``; update the index."""
        row_new = {a: cols[a][i] for a in self.dc.attributes}
        row_old = dict(row_new)
        row_old[attr] = old_value
        self._remove_row(row_old)
        self._add_row(row_new)

    # -- queries -------------------------------------------------------
    def total(self) -> int:
        raise NotImplementedError

    def candidate_counts(self, target_values: dict | None,
                         context: dict) -> np.ndarray | None:
        """New-violation counts per candidate against the indexed rows.

        Same contract as
        :func:`~repro.constraints.violations.multi_candidate_violation_counts`
        (the indexed rows play the role of ``prefix_cols``).  Returns
        None when this index cannot answer the probe exactly — the
        caller must then fall back to the scan engine.
        """
        return None

    def probe_many(self, target_values, contexts) -> np.ndarray | None:
        """Batched :meth:`candidate_counts` over a block of rows.

        ``target_values`` is either a single dict shared by every row
        (the categorical full-domain case) or a sequence of per-row
        dicts; ``contexts`` is a sequence of per-row context dicts.  All
        rows must probe the same candidate count ``d``.  Returns a
        ``(len(contexts), d)`` count matrix, or None as soon as any row
        cannot be answered exactly (the caller falls back to the scan
        engine for the whole block).

        The base implementation loops; shape-specific subclasses
        vectorize the hot layouts (see
        :meth:`FDViolationIndex.probe_block_codes`).
        """
        self._bump("probe_many")
        shared = isinstance(target_values, dict)
        out = []
        for r, context in enumerate(contexts):
            tv = target_values if shared else target_values[r]
            counts = self.candidate_counts(tv, context)
            if counts is None:
                return None
            out.append(counts)
        if not out:
            return np.zeros((0, 0), dtype=np.int64)
        return np.vstack(out)

    # -- internals -----------------------------------------------------
    def _add_row(self, row: dict) -> None:
        raise NotImplementedError

    def _remove_row(self, row: dict) -> None:
        raise NotImplementedError


# ----------------------------------------------------------------------
# FD-shaped DCs
# ----------------------------------------------------------------------
class FDViolationIndex(ViolationIndex):
    """Hash-bucket group index for an FD-shaped DC ``X -> y``.

    State per determinant key: group size and a histogram of dependent
    values.  Appending a tuple with key ``k`` and dependent ``v``
    creates ``size(k) - count(k, v)`` new violating pairs, which is an
    O(1) dict probe — and exactly what the scan engine counts, because a
    pair violates an FD iff the determinants agree and the dependents
    differ (both orientations coincide).
    """

    supports_candidates = True
    supports_removal = True

    def __init__(self, dc: DenialConstraint):
        super().__init__(dc)
        fd = dc.as_fd()
        if fd is None:
            raise ValueError(f"DC {dc.name} is not FD-shaped")
        self.determinant, self.dependent = fd
        self.reset()

    def reset(self) -> None:
        #: key -> [group_size, {dep_value: count}]
        self._groups: dict[tuple, list] = {}
        self._total = 0
        self._n = 0
        # Det-major cache for single-attribute integer determinants:
        # sizes[code] = group size, by_dep[dep][code] = count(code, dep).
        # Activated lazily on the first determinant-target probe (the
        # sampler filling a determinant column after the dependent) and
        # maintained incrementally; answers a full-domain candidate
        # probe as two O(V) vector ops instead of V dict lookups.
        self._det_sizes: np.ndarray | None = None
        self._det_by_dep: dict | None = None

    def _key(self, row: dict) -> tuple:
        return tuple(_item(row[a]) for a in self.determinant)

    def append_from(self, cols: dict, i: int) -> None:
        self._add_row({a: cols[a][i] for a in self.dc.attributes})

    def remove_from(self, cols: dict, i: int) -> None:
        self._remove_row({a: cols[a][i] for a in self.dc.attributes})

    # -- det-major cache -----------------------------------------------
    def _det_cache_update(self, key: tuple, dep, delta: int) -> None:
        if self._det_sizes is None:
            return
        code = key[0]
        if (not isinstance(code, (int, np.integer))
                or not 0 <= code < self._det_sizes.shape[0]):
            self._det_sizes = None
            self._det_by_dep = None
            return
        self._det_sizes[code] += delta
        per = self._det_by_dep.get(dep)
        if per is None:
            per = np.zeros(self._det_sizes.shape[0], dtype=np.int64)
            self._det_by_dep[dep] = per
        per[code] += delta

    def _activate_det_cache(self, size: int) -> bool:
        """Build the det-major arrays over code domain ``0..size-1``."""
        if len(self.determinant) != 1:
            return False
        sizes = np.zeros(size, dtype=np.int64)
        by_dep: dict = {}
        for key, (gsize, counts) in self._groups.items():
            code = key[0]
            if (not isinstance(code, (int, np.integer))
                    or not 0 <= code < size):
                return False
            sizes[code] = gsize
            for dep, c in counts.items():
                per = by_dep.get(dep)
                if per is None:
                    per = np.zeros(size, dtype=np.int64)
                    by_dep[dep] = per
                per[code] = c
        self._det_sizes = sizes
        self._det_by_dep = by_dep
        return True

    def probe_det_codes(self, dep, size: int,
                        out: np.ndarray | None = None) -> np.ndarray | None:
        """Counts for full-domain *determinant* candidates, fixed dep.

        The mirror image of :meth:`probe_block_codes`: the sampler is
        filling a determinant column after the dependent, so candidate
        ``c`` joins group ``c`` and creates ``size(c) - count(c, dep)``
        violations.  O(V) vectorized via the det-major cache; None when
        the cache cannot represent this index (composite or non-code
        determinant).  ``out`` receives the counts without allocating.
        """
        self._bump("probe_det_codes")
        if self._det_sizes is None or self._det_sizes.shape[0] != size:
            self._det_sizes = None
            self._det_by_dep = None
            if not self._activate_det_cache(size):
                return None
        per = self._det_by_dep.get(_item(dep))
        if out is None:
            if per is None:
                return self._det_sizes.copy()
            return self._det_sizes - per
        if per is None:
            out[:] = self._det_sizes
        else:
            np.subtract(self._det_sizes, per, out=out)
        return out

    # -- multiset updates ----------------------------------------------
    def probe_pair(self, key: tuple, dep) -> int:
        """New violations if ``(key, dep)`` were appended — the O(1)
        kernel behind every probe; ``key``/``dep`` are python scalars
        (as produced by ``.tolist()`` on the column arrays)."""
        self._bump("probe_pair")
        group = self._groups.get(key)
        if group is None:
            return 0
        return group[0] - group[1].get(dep, 0)

    def add_pair(self, key: tuple, dep) -> None:
        """Append one ``(determinant key, dependent)`` observation.

        The allocation-free core of :meth:`append_from` for callers that
        already hold python-scalar keys (the blocked engine's fast
        lane).
        """
        group = self._groups.get(key)
        if group is None:
            group = [0, {}]
            self._groups[key] = group
        size, counts = group
        self._total += size - counts.get(dep, 0)
        group[0] = size + 1
        counts[dep] = counts.get(dep, 0) + 1
        self._det_cache_update(key, dep, 1)
        self._n += 1

    def _add_row(self, row: dict) -> None:
        self.add_pair(self._key(row), _item(row[self.dependent]))

    def _remove_row(self, row: dict) -> None:
        key = self._key(row)
        dep = _item(row[self.dependent])
        group = self._groups[key]
        size, counts = group
        self._total -= size - counts.get(dep, 0)
        group[0] = size - 1
        if counts[dep] == 1:
            del counts[dep]
        else:
            counts[dep] -= 1
        if group[0] == 0:
            del self._groups[key]
        self._det_cache_update(key, dep, -1)
        self._n -= 1

    def total(self) -> int:
        return self._total

    def __len__(self) -> int:
        return self._n

    def candidate_counts(self, target_values: dict | None,
                         context: dict) -> np.ndarray | None:
        self._bump("candidate_counts")
        if not target_values:
            row = {a: context[a] for a in self.dc.attributes}
            key = self._key(row)
            group = self._groups.get(key)
            if group is None:
                return np.zeros(1, dtype=np.int64)
            size, counts = group
            dep = _item(row[self.dependent])
            return np.array([size - counts.get(dep, 0)], dtype=np.int64)

        d = next(iter(target_values.values())).shape[0]
        det_in_targets = [a for a in self.determinant if a in target_values]
        if not det_in_targets and self.dependent in target_values:
            # Fast path: fixed determinant group, vector of dependents.
            key = tuple(_item(context[a]) for a in self.determinant)
            group = self._groups.get(key)
            if group is None:
                return np.zeros(d, dtype=np.int64)
            size, counts = group
            deps = target_values[self.dependent].tolist()
            return np.fromiter((size - counts.get(v, 0) for v in deps),
                               dtype=np.int64, count=d)

        # Det-target fast path: single-attribute determinant, fixed
        # dependent, full-code-domain candidates (the sampler filling a
        # determinant column after its dependent).
        if (len(self.determinant) == 1 and det_in_targets
                and self.dependent not in target_values):
            cands = target_values[self.determinant[0]]
            if (cands.dtype.kind in "iu"
                    and np.array_equal(cands, np.arange(
                        cands.shape[0], dtype=cands.dtype))):
                counts = self.probe_det_codes(context[self.dependent],
                                              cands.shape[0])
                if counts is not None:
                    return counts

        # General path: the determinant key varies per candidate.
        det_cols = [
            (target_values[a].tolist() if a in target_values
             else [_item(context[a])] * d)
            for a in self.determinant]
        if self.dependent in target_values:
            dep_col = target_values[self.dependent].tolist()
        else:
            dep_col = [_item(context[self.dependent])] * d
        out = np.empty(d, dtype=np.int64)
        for c in range(d):
            key = tuple(col[c] for col in det_cols)
            group = self._groups.get(key)
            if group is None:
                out[c] = 0
            else:
                size, counts = group
                out[c] = size - counts.get(dep_col[c], 0)
        return out

    def probe_block_codes(self, keys: list, size: int) -> np.ndarray:
        """Vectorized block probe: full-domain categorical dependents.

        ``keys`` holds one (python-scalar) determinant key tuple per
        block row; candidates are the complete code domain ``0..size-1``
        for every row.  Row ``r`` of the result is
        ``group_size(keys[r]) - histogram(keys[r])`` — identical to
        :meth:`candidate_counts` with ``target_values =
        {dependent: arange(size)}`` but without the per-candidate dict
        probes (a group's histogram usually has far fewer distinct
        dependents than the domain has codes).
        """
        self._bump("probe_block_codes")
        out = np.empty((len(keys), size), dtype=np.int64)
        for r, key in enumerate(keys):
            group = self._groups.get(key)
            row = out[r]
            if group is None:
                row[:] = 0
                continue
            gsize, counts = group
            row[:] = gsize
            if counts:
                idx = np.fromiter(counts.keys(), dtype=np.int64,
                                  count=len(counts))
                vals = np.fromiter(counts.values(), dtype=np.int64,
                                   count=len(counts))
                row[idx] -= vals
        return out

    def probe_many(self, target_values, contexts) -> np.ndarray | None:
        if (isinstance(target_values, dict)
                and set(target_values) == {self.dependent}):
            deps = target_values[self.dependent]
            if (deps.dtype.kind in "iu" and deps.shape[0] > 0
                    and np.array_equal(
                        deps, np.arange(deps.shape[0], dtype=deps.dtype))):
                # Full-domain categorical candidates: one vectorized
                # histogram subtraction per row.
                keys = [tuple(_item(ctx[a]) for a in self.determinant)
                        for ctx in contexts]
                return self.probe_block_codes(keys, deps.shape[0])
        return super().probe_many(target_values, contexts)

    def dependents_of(self, key_row: dict) -> list:
        """Sorted distinct dependent values already bound to the
        determinant group of ``key_row`` (empty if the group is new)."""
        group = self._groups.get(self._key(key_row))
        if group is None:
            return []
        return sorted(group[1])

    def matched_det_values(self, target: str, row: dict) -> list:
        """Sorted distinct values of determinant attribute ``target``
        among indexed rows matching ``row`` on the *other* determinant
        attributes and on the dependent.

        The reverse of :meth:`dependents_of`: the sampler is filling a
        determinant column and wants prefix values already bound to this
        dependent — exactly what the O(prefix) equality scan returns,
        served in O(#groups) from the histograms (streaming draws keep
        the index but not the prefix arrays).
        """
        t_pos = self.determinant.index(target)
        others = [(p, _item(row[a]))
                  for p, a in enumerate(self.determinant) if a != target]
        dep = _item(row[self.dependent])
        out = set()
        for key, (_, counts) in self._groups.items():
            if dep not in counts:
                continue
            if all(key[p] == v for p, v in others):
                out.add(key[t_pos])
        return sorted(out)


# ----------------------------------------------------------------------
# Conditional-order DCs
# ----------------------------------------------------------------------
#: Group size at which an order group builds its Fenwick tree (smaller
#: groups answer probes faster with the plain sort-and-search path).
_FENWICK_MIN_GROUP = 8
#: Cap on the per-group Fenwick table (cells), keeping memory bounded.
_MAX_FENWICK_CELLS = 1 << 16
#: Universes small enough that a dense count grid (O(1) update, pure
#: vectorized probes) beats BIT walks; larger ones use the Fenwick.
_DENSE_GRID_CELLS = 1 << 12
#: Values beyond this magnitude lose exactness as float64 ranks.
_FENWICK_MAX_ABS = float(2 ** 52)


class _Fenwick2D:
    """2D binary-indexed tree over compressed ``(rank_a, rank_b)`` grids.

    Point ranks are 1-based; :meth:`prefix` returns the number of
    indexed points with ``rank_a <= ra and rank_b <= rb`` in
    O(log ga * log gb).  The multi-candidate variants answer a whole
    candidate vector against one fixed partner rank with the inner BIT
    decomposition shared across candidates, so ``d`` probes cost
    O((ga + d) log gb) instead of ``d`` independent tree walks.
    """

    __slots__ = ("ga", "gb", "tree")

    def __init__(self, ga: int, gb: int):
        self.ga = ga
        self.gb = gb
        self.tree = np.zeros((ga + 1, gb + 1), dtype=np.int64)

    def update(self, ra: int, rb: int, delta: int) -> None:
        i = ra
        while i <= self.ga:
            row = self.tree[i]
            j = rb
            while j <= self.gb:
                row[j] += delta
                j += j & (-j)
            i += i & (-i)

    @staticmethod
    def _path(rank: int) -> list[int]:
        out = []
        while rank > 0:
            out.append(rank)
            rank -= rank & (-rank)
        return out

    def prefix(self, ra: int, rb: int) -> int:
        total = 0
        for i in self._path(ra):
            row = self.tree[i]
            for j in self._path(rb):
                total += row[j]
        return int(total)

    def _rank_scan(self, marginal: np.ndarray,
                   ranks: np.ndarray) -> np.ndarray:
        """Prefix sums of a 1D BIT marginal at each requested rank.

        For dense rank sets (the common probe shape: every candidate
        rank, or the whole universe) the full prefix vector is rebuilt
        with the ``prefix[r] = prefix[r - lowbit(r)] + marginal[r]``
        recurrence — one tiny O(size) loop — and indexed; sparse rank
        sets walk their BIT paths vectorized instead.
        """
        size = marginal.shape[0] - 1
        if size <= 512 or ranks.shape[0] * 8 >= size:
            m = marginal.tolist()
            prefix = [0] * (size + 1)
            for r in range(1, size + 1):
                prefix[r] = prefix[r - (r & -r)] + m[r]
            return np.asarray(prefix, dtype=np.int64)[ranks]
        ans = np.zeros(ranks.shape[0], dtype=np.int64)
        rank = ranks.astype(np.int64, copy=True)
        while True:
            live = np.flatnonzero(rank)
            if live.size == 0:
                return ans
            ans[live] += marginal[rank[live]]
            rank[live] -= rank[live] & (-rank[live])

    def prefix_a_many(self, ras: np.ndarray, rb: int) -> np.ndarray:
        """``prefix(ra, rb)`` for a vector of a-ranks, fixed ``rb``."""
        cols = self._path(rb)
        if not cols:
            return np.zeros(ras.shape[0], dtype=np.int64)
        return self._rank_scan(self.tree[:, cols].sum(axis=1), ras)

    def prefix_b_many(self, ra: int, rbs: np.ndarray) -> np.ndarray:
        """``prefix(ra, rb)`` for a vector of b-ranks, fixed ``ra``."""
        rows = self._path(ra)
        if not rows:
            return np.zeros(rbs.shape[0], dtype=np.int64)
        return self._rank_scan(self.tree[rows, :].sum(axis=0), rbs)


class _DenseGrid:
    """Dense (rank_a, rank_b) count grid — the small-universe sibling of
    :class:`_Fenwick2D`.

    For tiny compressed universes (quantized snap grids are typically
    16-32 values a side) a dense int matrix answers the same dominance
    queries with a couple of fused-slice sums and O(1) point updates,
    with far smaller constants than BIT path walks.  The update/query
    API mirrors :class:`_Fenwick2D` (1-based point ranks) so
    :class:`OrderViolationIndex` treats the two interchangeably.
    """

    __slots__ = ("ga", "gb", "grid")

    def __init__(self, ga: int, gb: int):
        self.ga = ga
        self.gb = gb
        self.grid = np.zeros((ga, gb), dtype=np.int64)

    def update(self, ra: int, rb: int, delta: int) -> None:
        self.grid[ra - 1, rb - 1] += delta

    def prefix(self, ra: int, rb: int) -> int:
        return int(self.grid[:ra, :rb].sum())

    def prefix_a_many(self, ras: np.ndarray, rb: int) -> np.ndarray:
        per_a = self.grid[:, :rb].sum(axis=1)
        cum = np.zeros(self.ga + 1, dtype=np.int64)
        np.cumsum(per_a, out=cum[1:])
        return cum[ras]

    def prefix_b_many(self, ra: int, rbs: np.ndarray) -> np.ndarray:
        per_b = self.grid[:ra, :].sum(axis=0)
        cum = np.zeros(self.gb + 1, dtype=np.int64)
        np.cumsum(per_b, out=cum[1:])
        return cum[rbs]


class _OrderGroup:
    """The (A, B) points of one equality group.

    Backed by capacity-doubling numpy buffers so that appends are O(1)
    amortised and :meth:`arrays` is a zero-copy view — an eq-less order
    DC has a single group covering the whole prefix, and rebuilding its
    arrays per probe would be quadratic.

    When the owning index was given value universes
    (:meth:`OrderViolationIndex.provide_universe`), a group that grows
    past ``_FENWICK_MIN_GROUP`` additionally maintains a
    :class:`_Fenwick2D` over the compressed (A, B) ranks, turning each
    probe from an O(group log group) sort into O(log group) tree walks.
    A value outside the universe permanently reverts the group to the
    scan path (``off_universe``) — counts stay exact either way.
    """

    __slots__ = ("_a", "_b", "_n", "fen", "off_universe")

    def __init__(self):
        self._a = None
        self._b = None
        self._n = 0
        self.fen = None
        self.off_universe = False

    def arrays(self):
        if self._a is None:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty
        return self._a[:self._n], self._b[:self._n]

    @staticmethod
    def _grow(buf: np.ndarray) -> np.ndarray:
        out = np.empty(2 * buf.shape[0], dtype=buf.dtype)
        out[:buf.shape[0]] = buf
        return out

    def add(self, a, b) -> None:
        if self._a is None:
            dtype_a = np.int64 if isinstance(a, (int, np.integer)) \
                else np.float64
            dtype_b = np.int64 if isinstance(b, (int, np.integer)) \
                else np.float64
            self._a = np.empty(8, dtype=dtype_a)
            self._b = np.empty(8, dtype=dtype_b)
        elif self._n == self._a.shape[0]:
            self._a = self._grow(self._a)
            self._b = self._grow(self._b)
        self._a[self._n] = a
        self._b[self._n] = b
        self._n += 1

    def remove(self, a, b) -> None:
        # Multiset removal: drop one occurrence (swap-with-last + pop).
        a_arr, b_arr = self.arrays()
        hits = np.flatnonzero((a_arr == a) & (b_arr == b))
        if hits.size == 0:
            raise KeyError((a, b))
        p = int(hits[-1])
        last = self._n - 1
        self._a[p] = self._a[last]
        self._b[p] = self._b[last]
        self._n = last

    def __len__(self) -> int:
        return self._n


class OrderViolationIndex(ViolationIndex):
    """Sorted-structure index for ``not(E= and A> and B<)`` DCs.

    A pair violates iff the equality attributes agree and (A, B) are
    strictly discordant.  Per equality group the index stores the
    (A, B) points; a probe for candidates of one order attribute with
    the partner fixed splits the group into partner-below / partner-
    above halves, sorts the target values of each half once, and
    answers every candidate with two binary searches.
    """

    supports_candidates = True
    supports_removal = True

    def __init__(self, dc: DenialConstraint):
        super().__init__(dc)
        shape = dc.as_conditional_order()
        if shape is None:
            raise ValueError(f"DC {dc.name} is not conditional-order-shaped")
        self.eq_attrs, self.greater_attr, self.less_attr = shape
        self._uni_a: np.ndarray | None = None
        self._uni_b: np.ndarray | None = None
        self.reset()

    def reset(self) -> None:
        self._groups: dict[tuple, _OrderGroup] = {}
        self._total = 0
        self._n = 0

    def provide_universe(self, greater_values, less_values) -> bool:
        """Enable Fenwick-backed groups over compressed value grids.

        ``greater_values`` / ``less_values`` enumerate the values the
        two order attributes can take (e.g. the sampler's snap grids or
        a categorical code range).  When both universes are small enough
        (``_MAX_FENWICK_CELLS``) and exactly representable as float64
        ranks, groups past ``_FENWICK_MIN_GROUP`` points switch their
        probes from the O(group log group) sort path to O(log group)
        BIT walks.  Values outside the universe only revert the
        affected group to the scan path — counts stay bit-identical in
        every configuration.  Returns whether the universes were
        accepted.
        """
        if greater_values is None or less_values is None:
            return False
        uni_a = np.unique(np.asarray(greater_values, dtype=np.float64))
        uni_b = np.unique(np.asarray(less_values, dtype=np.float64))
        if uni_a.size == 0 or uni_b.size == 0:
            return False
        if (uni_a.size + 1) * (uni_b.size + 1) > _MAX_FENWICK_CELLS:
            return False
        if (np.abs(uni_a) > _FENWICK_MAX_ABS).any() \
                or (np.abs(uni_b) > _FENWICK_MAX_ABS).any():
            return False
        self._uni_a, self._uni_b = uni_a, uni_b
        for group in self._groups.values():
            self._build_fenwick(group)
        return True

    def _key(self, row: dict) -> tuple:
        return tuple(_item(row[a]) for a in self.eq_attrs)

    # -- Fenwick bookkeeping -------------------------------------------
    def _rank_of(self, uni: np.ndarray, value) -> int | None:
        """1-based universe rank of ``value``, or None if absent."""
        pos = int(np.searchsorted(uni, value, side="left"))
        if pos < uni.size and uni[pos] == value:
            return pos + 1
        return None

    def _build_fenwick(self, group: _OrderGroup) -> None:
        if (self._uni_a is None or group.off_universe
                or len(group) < _FENWICK_MIN_GROUP):
            return
        cls = (_DenseGrid
               if self._uni_a.size * self._uni_b.size <= _DENSE_GRID_CELLS
               else _Fenwick2D)
        fen = cls(self._uni_a.size, self._uni_b.size)
        a_arr, b_arr = group.arrays()
        for a, b in zip(a_arr.tolist(), b_arr.tolist()):
            ra = self._rank_of(self._uni_a, a)
            rb = self._rank_of(self._uni_b, b)
            if ra is None or rb is None:
                group.off_universe = True
                group.fen = None
                return
            fen.update(ra, rb, 1)
        group.fen = fen

    def _fenwick_update(self, group: _OrderGroup, a, b, delta: int) -> None:
        if self._uni_a is None or group.off_universe:
            return
        if group.fen is None:
            if delta > 0:
                self._build_fenwick(group)
            return
        ra = self._rank_of(self._uni_a, a)
        rb = self._rank_of(self._uni_b, b)
        if ra is None or rb is None:
            # Off-universe point: the tree can no longer answer probes
            # for this group; fall back to the scan path permanently.
            group.off_universe = True
            group.fen = None
            return
        group.fen.update(ra, rb, delta)

    def _discordant(self, group: _OrderGroup, a, b) -> int:
        """Strictly discordant pairs between (a, b) and the group."""
        fen = group.fen
        if fen is not None:
            uni_a, uni_b = self._uni_a, self._uni_b
            ra_lt = int(np.searchsorted(uni_a, a, side="left"))
            ra_le = int(np.searchsorted(uni_a, a, side="right"))
            rb_lt = int(np.searchsorted(uni_b, b, side="left"))
            rb_le = int(np.searchsorted(uni_b, b, side="right"))
            if isinstance(fen, _DenseGrid):
                m = fen.grid
                return int(m[:ra_lt, rb_le:].sum()
                           + m[ra_le:, :rb_lt].sum())
            lo = fen.prefix(ra_lt, fen.gb) - fen.prefix(ra_lt, rb_le)
            hi = fen.prefix(fen.ga, rb_lt) - fen.prefix(ra_le, rb_lt)
            return lo + hi
        a_arr, b_arr = group.arrays()
        lo = int(np.count_nonzero((a_arr < a) & (b_arr > b)))
        hi = int(np.count_nonzero((a_arr > a) & (b_arr < b)))
        return lo + hi

    def append_from(self, cols: dict, i: int) -> None:
        self._add_row({a: cols[a][i] for a in self.dc.attributes})

    def remove_from(self, cols: dict, i: int) -> None:
        self._remove_row({a: cols[a][i] for a in self.dc.attributes})

    def _add_row(self, row: dict) -> None:
        key = self._key(row)
        group = self._groups.get(key)
        if group is None:
            group = _OrderGroup()
            self._groups[key] = group
        a = _item(row[self.greater_attr])
        b = _item(row[self.less_attr])
        self._total += self._discordant(group, a, b)
        group.add(a, b)
        self._fenwick_update(group, a, b, 1)
        self._n += 1

    def _remove_row(self, row: dict) -> None:
        key = self._key(row)
        group = self._groups[key]
        a = _item(row[self.greater_attr])
        b = _item(row[self.less_attr])
        group.remove(a, b)
        self._fenwick_update(group, a, b, -1)
        self._total -= self._discordant(group, a, b)
        if not len(group):
            del self._groups[key]
        self._n -= 1

    def total(self) -> int:
        return self._total

    def __len__(self) -> int:
        return self._n

    def candidate_counts(self, target_values: dict | None,
                         context: dict) -> np.ndarray | None:
        self._bump("candidate_counts")
        if target_values:
            if any(a in target_values for a in self.eq_attrs):
                return None  # group varies per candidate: fall back
            in_targets = [a for a in (self.greater_attr, self.less_attr)
                          if a in target_values]
            if len(in_targets) != 1:
                return None  # both order attrs vary: fall back
            target = in_targets[0]
            cands = target_values[target]
            d = cands.shape[0]
        else:
            target = self.greater_attr
            cands = np.asarray([context[self.greater_attr]])
            d = 1

        row = {a: context[a] for a in self.eq_attrs}
        group = self._groups.get(self._key(row))
        if group is None:
            return np.zeros(d, dtype=np.int64)
        if group.fen is not None:
            partner = context[self.less_attr if target == self.greater_attr
                              else self.greater_attr]
            return self._fenwick_counts(group.fen, target, cands, partner)
        a_arr, b_arr = group.arrays()

        if target == self.greater_attr:
            partner = context[self.less_attr]
            # p violates with candidate a_c iff
            # (a_p < a_c and b_p > partner) or (a_p > a_c and b_p < partner)
            below_t = np.sort(a_arr[b_arr > partner])
            above_t = np.sort(a_arr[b_arr < partner])
        else:
            partner = context[self.greater_attr]
            # p violates with candidate b_c iff
            # (b_p > b_c and a_p < partner) or (b_p < b_c and a_p > partner)
            below_t = np.sort(b_arr[a_arr > partner])
            above_t = np.sort(b_arr[a_arr < partner])
        counts = np.searchsorted(below_t, cands, side="left")
        counts = counts + (above_t.size
                           - np.searchsorted(above_t, cands, side="right"))
        return counts.astype(np.int64)

    def _fenwick_counts(self, fen: _Fenwick2D, target: str,
                        cands: np.ndarray, partner) -> np.ndarray:
        """O(log group) per-candidate discordance via the group's BIT.

        Mirrors the sort-based probe exactly: candidates and the partner
        value are located in the universes with binary search (arbitrary
        probe values are fine — only *indexed* points must lie on the
        universe), and the four strict dominance counts combine into the
        discordant-pair totals.
        """
        uni_a, uni_b = self._uni_a, self._uni_b
        c = np.asarray(cands, dtype=np.float64)
        dense = fen.grid if isinstance(fen, _DenseGrid) else None
        if target == self.greater_attr:
            ra_lt = np.searchsorted(uni_a, c, side="left")
            ra_le = np.searchsorted(uni_a, c, side="right")
            rb_lt = int(np.searchsorted(uni_b, partner, side="left"))
            rb_le = int(np.searchsorted(uni_b, partner, side="right"))
            if dense is not None:
                # #(a<c & b>p) via a cumsum over "b above" per a-rank,
                # #(a>c & b<p) via the suffix of "b below" per a-rank.
                hi_per_a = dense[:, rb_le:].sum(axis=1)
                lo_per_a = dense[:, :rb_lt].sum(axis=1)
                cum_hi = np.zeros(fen.ga + 1, dtype=np.int64)
                np.cumsum(hi_per_a, out=cum_hi[1:])
                cum_lo = np.zeros(fen.ga + 1, dtype=np.int64)
                np.cumsum(lo_per_a, out=cum_lo[1:])
                return cum_hi[ra_lt] + (cum_lo[fen.ga] - cum_lo[ra_le])
            below = (fen.prefix_a_many(ra_lt, fen.gb)
                     - fen.prefix_a_many(ra_lt, rb_le))
            above = (fen.prefix(fen.ga, rb_lt)
                     - fen.prefix_a_many(ra_le, rb_lt))
        else:
            rb_lt = np.searchsorted(uni_b, c, side="left")
            rb_le = np.searchsorted(uni_b, c, side="right")
            ra_lt = int(np.searchsorted(uni_a, partner, side="left"))
            ra_le = int(np.searchsorted(uni_a, partner, side="right"))
            if dense is not None:
                hi_per_b = dense[ra_le:, :].sum(axis=0)
                lo_per_b = dense[:ra_lt, :].sum(axis=0)
                cum_hi = np.zeros(fen.gb + 1, dtype=np.int64)
                np.cumsum(hi_per_b, out=cum_hi[1:])
                cum_lo = np.zeros(fen.gb + 1, dtype=np.int64)
                np.cumsum(lo_per_b, out=cum_lo[1:])
                return cum_hi[rb_lt] + (cum_lo[fen.gb] - cum_lo[rb_le])
            below = (fen.prefix_b_many(fen.ga, rb_lt)
                     - fen.prefix_b_many(ra_le, rb_lt))
            above = (fen.prefix(ra_lt, fen.gb)
                     - fen.prefix_b_many(ra_lt, rb_le))
        return (below + above).astype(np.int64)

    def group_points(self, key_row: dict):
        """The indexed (A, B) point arrays of ``key_row``'s equality
        group, or None if the group is empty (views — do not mutate)."""
        group = self._groups.get(self._key(key_row))
        if group is None:
            return None
        return group.arrays()

    def group_profile(self, key_row: dict, target: str, partner_value,
                      limit: int):
        """Hard-DC candidate hints for ``target`` given a fixed partner.

        Returns ``(matching, below_max, above_min)`` where ``matching``
        is the first ``limit`` sorted distinct target values of group
        rows whose partner equals ``partner_value`` (always violation-
        free against those rows), and ``below_max`` / ``above_min`` are
        the feasible-interval endpoints over rows with partner strictly
        below / above (None when the half is empty).  Exact mirror of
        the prefix scans in the sampler's ``_consistent_values`` /
        ``_order_interval``; returns None when the group has no Fenwick
        (the caller scans the group arrays instead).
        """
        group = self._groups.get(self._key(key_row))
        if group is None:
            return [], None, None
        fen = group.fen
        if fen is None:
            return None
        if isinstance(fen, _DenseGrid):
            if target == self.greater_attr:
                uni = self._uni_a
                rb_lt = int(np.searchsorted(self._uni_b, partner_value,
                                            "left"))
                rb_le = int(np.searchsorted(self._uni_b, partner_value,
                                            "right"))
                eq_counts = fen.grid[:, rb_lt:rb_le].sum(axis=1)
                below_counts = fen.grid[:, :rb_lt].sum(axis=1)
                above_counts = fen.grid[:, rb_le:].sum(axis=1)
            else:
                uni = self._uni_b
                ra_lt = int(np.searchsorted(self._uni_a, partner_value,
                                            "left"))
                ra_le = int(np.searchsorted(self._uni_a, partner_value,
                                            "right"))
                eq_counts = fen.grid[ra_lt:ra_le, :].sum(axis=0)
                below_counts = fen.grid[:ra_lt, :].sum(axis=0)
                above_counts = fen.grid[ra_le:, :].sum(axis=0)
            matching = uni[np.flatnonzero(eq_counts)[:limit]].tolist()
            below = np.flatnonzero(below_counts)
            above = np.flatnonzero(above_counts)
            below_max = float(uni[below[-1]]) if below.size else None
            above_min = float(uni[above[0]]) if above.size else None
            return matching, below_max, above_min
        if target == self.greater_attr:
            uni, size = self._uni_a, fen.ga
            rb_lt = int(np.searchsorted(self._uni_b, partner_value, "left"))
            rb_le = int(np.searchsorted(self._uni_b, partner_value, "right"))
            ranks = np.arange(1, size + 1)
            le = fen.prefix_a_many(ranks, rb_le)
            lt = fen.prefix_a_many(ranks, rb_lt)
            full = fen.prefix_a_many(ranks, fen.gb)
        else:
            uni, size = self._uni_b, fen.gb
            ra_lt = int(np.searchsorted(self._uni_a, partner_value, "left"))
            ra_le = int(np.searchsorted(self._uni_a, partner_value, "right"))
            ranks = np.arange(1, size + 1)
            le = fen.prefix_b_many(ra_le, ranks)
            lt = fen.prefix_b_many(ra_lt, ranks)
            full = fen.prefix_b_many(fen.ga, ranks)
        zero = np.zeros(1, dtype=np.int64)
        eq_counts = np.diff(np.concatenate([zero, le - lt]))
        below_counts = np.diff(np.concatenate([zero, lt]))
        above_counts = np.diff(np.concatenate([zero, full - le]))
        matching = uni[np.flatnonzero(eq_counts > 0)[:limit]].tolist()
        below = np.flatnonzero(below_counts > 0)
        above = np.flatnonzero(above_counts > 0)
        below_max = float(uni[below[-1]]) if below.size else None
        above_min = float(uni[above[0]]) if above.size else None
        return matching, below_max, above_min


# ----------------------------------------------------------------------
# Unary DCs
# ----------------------------------------------------------------------
class UnaryViolationIndex(ViolationIndex):
    """Running total for a unary DC (violations are per-tuple)."""

    supports_candidates = True
    supports_removal = True

    def __init__(self, dc: DenialConstraint):
        super().__init__(dc)
        if not dc.is_unary:
            raise ValueError(f"DC {dc.name} is not unary")
        self.reset()

    def reset(self) -> None:
        self._total = 0
        self._n = 0

    def _violates(self, row: dict) -> bool:
        for pred in self.dc.predicates:
            if not bool(pred.evaluate(lambda var, attr: row[attr])):
                return False
        return True

    def append_from(self, cols: dict, i: int) -> None:
        self._add_row({a: cols[a][i] for a in self.dc.attributes})

    def remove_from(self, cols: dict, i: int) -> None:
        self._remove_row({a: cols[a][i] for a in self.dc.attributes})

    def _add_row(self, row: dict) -> None:
        self._total += int(self._violates(row))
        self._n += 1

    def _remove_row(self, row: dict) -> None:
        self._total -= int(self._violates(row))
        self._n -= 1

    def total(self) -> int:
        return self._total

    def __len__(self) -> int:
        return self._n

    def candidate_counts(self, target_values: dict | None,
                         context: dict) -> np.ndarray | None:
        from repro.constraints.violations import (
            multi_candidate_violation_counts,
        )
        # Unary violations ignore the indexed rows entirely; delegate to
        # the (cheap, O(d)) scan evaluation for exact agreement.
        return multi_candidate_violation_counts(self.dc, target_values,
                                                context, {})


# ----------------------------------------------------------------------
# Generic binary DCs
# ----------------------------------------------------------------------
class GenericViolationIndex(ViolationIndex):
    """Cached blocked-numpy fallback for arbitrary binary DCs.

    Holds references to the live column arrays plus a row count; the
    full blocked O(n^2) total is computed lazily and cached until the
    instance changes.  Candidate probes delegate to the scan engine over
    the referenced prefix (there is no exploitable group structure), so
    results match the scan path exactly.
    """

    def __init__(self, dc: DenialConstraint):
        super().__init__(dc)
        self._cols: dict | None = None
        self.reset()

    def reset(self) -> None:
        self._n = 0
        self._cached_total: int | None = None

    def build(self, cols: dict, n: int) -> None:
        self.reset()
        self._cols = cols
        self._n = n

    def append_from(self, cols: dict, i: int) -> None:
        if self._cols is None:
            self._cols = cols
        self._n = max(self._n, i + 1)
        self._cached_total = None

    def rewrite_cell(self, cols: dict, i: int, attr: str, old_value) -> None:
        self._cached_total = None

    def total(self) -> int:
        if self._n == 0 or self._cols is None:
            return 0
        if self._cached_total is None:
            cols = {a: self._cols[a][:self._n] for a in self.dc.attributes}
            self._cached_total = _blocked_pair_count(self.dc, cols)
        return self._cached_total

    def __len__(self) -> int:
        return self._n


def _blocked_pair_count(dc: DenialConstraint, cols: dict) -> int:
    """Blocked O(n^2) unordered-pair count over a column dict.

    The single generic pair-counting kernel: ``count_violations``
    delegates its non-FD binary branch here, so index totals and scan
    totals share one implementation by construction.
    """
    from repro.constraints.violations import _BLOCK, _pair_mask
    n = next(iter(cols.values())).shape[0]
    total = 0
    for a0 in range(0, n, _BLOCK):
        a1 = min(a0 + _BLOCK, n)
        block_a = {k: v[a0:a1] for k, v in cols.items()}
        for b0 in range(a0, n, _BLOCK):
            b1 = min(b0 + _BLOCK, n)
            block_b = {k: v[b0:b1] for k, v in cols.items()}
            either = (_pair_mask(dc, block_a, block_b)
                      | _pair_mask(dc, block_b, block_a).T)
            if a0 == b0:
                # Same diagonal block: count strictly-upper pairs only.
                either = np.triu(either, k=1)
            total += int(either.sum())
    return total


def _blocked_row_counts(dc: DenialConstraint, cols: dict) -> np.ndarray:
    """Per-row participation counts via blocked pairwise evaluation."""
    from repro.constraints.violations import _BLOCK, _pair_mask
    n = next(iter(cols.values())).shape[0]
    out = np.zeros(n, dtype=np.int64)
    for a0 in range(0, n, _BLOCK):
        a1 = min(a0 + _BLOCK, n)
        block_a = {k: v[a0:a1] for k, v in cols.items()}
        row_counts = np.zeros(a1 - a0, dtype=np.int64)
        for b0 in range(0, n, _BLOCK):
            b1 = min(b0 + _BLOCK, n)
            block_b = {k: v[b0:b1] for k, v in cols.items()}
            either = (_pair_mask(dc, block_a, block_b)
                      | _pair_mask(dc, block_b, block_a).T)
            if a0 == b0:
                np.fill_diagonal(either, False)
            row_counts += either.sum(axis=1)
        out[a0:a1] = row_counts
    return out


# ----------------------------------------------------------------------
# Factory + per-row counting (Algorithm 5)
# ----------------------------------------------------------------------
def build_index(dc: DenialConstraint) -> ViolationIndex:
    """The most specific index for a DC's structural shape."""
    if dc.is_unary:
        return UnaryViolationIndex(dc)
    if dc.as_fd() is not None:
        return FDViolationIndex(dc)
    if dc.as_conditional_order() is not None:
        return OrderViolationIndex(dc)
    return GenericViolationIndex(dc)


def per_row_violation_counts(dc: DenialConstraint, table) -> np.ndarray:
    """``V[i] = |V(phi, t_i | D - {t_i})|`` for every tuple (one column
    of Algorithm 5's violation matrix), using the shape-specific fast
    path: group arithmetic for FDs, group-restricted blocked evaluation
    for conditional-order DCs, full blocked evaluation otherwise.
    """
    from repro.constraints.violations import _unary_mask, group_inverse
    cols = {a: table.column(a) for a in dc.attributes}
    n = table.n
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if dc.is_unary:
        return _unary_mask(dc, cols).astype(np.int64)
    fd = dc.as_fd()
    if fd is not None:
        lhs, rhs = fd
        key_cols = [table.column(a) for a in lhs]
        lhs_inv, lhs_counts = group_inverse(key_cols)
        full_inv, full_counts = group_inverse(key_cols + [table.column(rhs)])
        return (lhs_counts[lhs_inv] - full_counts[full_inv]).astype(np.int64)
    shape = dc.as_conditional_order()
    if shape is not None and shape[0]:
        eq_attrs = shape[0]
        inverse, _ = group_inverse([table.column(a) for a in eq_attrs])
        out = np.zeros(n, dtype=np.int64)
        order = np.argsort(inverse, kind="stable")
        bounds = np.flatnonzero(np.diff(inverse[order])) + 1
        for rows in np.split(order, bounds):
            sub = {a: c[rows] for a, c in cols.items()}
            out[rows] = _blocked_row_counts(dc, sub)
        return out
    return _blocked_row_counts(dc, cols)
