"""Predicates of denial constraints.

A predicate is ``(v1 o v2)`` or ``(v1 o c)`` where ``v1, v2`` reference
attributes of the universally quantified tuple variables ``t_i``/``t_j``
and ``c`` is a constant (§2.1).  Comparison happens on the *stored*
representation: integer codes for categorical attributes, floats for
numerical attributes — which makes equality comparisons exact and order
comparisons meaningful for numerical attributes.
"""

from __future__ import annotations

import enum

import numpy as np


class Operator(enum.Enum):
    """The six comparison operators of the DC grammar."""

    EQ = "="
    NE = "!="
    GT = ">"
    GE = ">="
    LT = "<"
    LE = "<="

    def apply(self, left, right):
        """Evaluate ``left op right`` elementwise (numpy-broadcasting)."""
        fn = _OP_FUNCS[self]
        return fn(left, right)

    def flip(self) -> "Operator":
        """The operator with swapped operands: ``a op b == b op.flip a``."""
        return _FLIPPED[self]

    def negate(self) -> "Operator":
        """The logical negation: ``not (a op b) == a op.negate b``."""
        return _NEGATED[self]


_OP_FUNCS = {
    Operator.EQ: np.equal,
    Operator.NE: np.not_equal,
    Operator.GT: np.greater,
    Operator.GE: np.greater_equal,
    Operator.LT: np.less,
    Operator.LE: np.less_equal,
}

_FLIPPED = {
    Operator.EQ: Operator.EQ,
    Operator.NE: Operator.NE,
    Operator.GT: Operator.LT,
    Operator.GE: Operator.LE,
    Operator.LT: Operator.GT,
    Operator.LE: Operator.GE,
}

_NEGATED = {
    Operator.EQ: Operator.NE,
    Operator.NE: Operator.EQ,
    Operator.GT: Operator.LE,
    Operator.GE: Operator.LT,
    Operator.LT: Operator.GE,
    Operator.LE: Operator.GT,
}

#: Tuple-variable tags.  ``TUPLE_I``/``TUPLE_J`` are the two universally
#: quantified variables; ``CONST`` marks a constant right-hand side.
TUPLE_I = "i"
TUPLE_J = "j"
CONST = "const"


class Predicate:
    """One conjunct of a denial constraint.

    Parameters
    ----------
    lhs_var, lhs_attr:
        Tuple variable (``"i"`` or ``"j"``) and attribute of the left
        operand.
    op:
        The comparison :class:`Operator`.
    rhs_var:
        ``"i"``, ``"j"``, or ``"const"``.
    rhs_attr:
        Attribute name of the right operand (ignored for constants).
    const:
        The constant value for ``rhs_var == "const"``; categorical
        constants must be given as raw domain values and are encoded by
        :meth:`bind`.
    """

    def __init__(self, lhs_var: str, lhs_attr: str, op: Operator,
                 rhs_var: str, rhs_attr: str | None = None, const=None):
        if lhs_var not in (TUPLE_I, TUPLE_J):
            raise ValueError(f"bad tuple variable {lhs_var!r}")
        if rhs_var not in (TUPLE_I, TUPLE_J, CONST):
            raise ValueError(f"bad rhs variable {rhs_var!r}")
        if rhs_var == CONST and const is None:
            raise ValueError("constant predicate needs a const value")
        if rhs_var != CONST and rhs_attr is None:
            raise ValueError("attribute predicate needs rhs_attr")
        self.lhs_var = lhs_var
        self.lhs_attr = lhs_attr
        self.op = op
        self.rhs_var = rhs_var
        self.rhs_attr = rhs_attr
        self.const = const

    @property
    def is_constant(self) -> bool:
        return self.rhs_var == CONST

    @property
    def attributes(self) -> set[str]:
        """All attribute names referenced by this predicate."""
        attrs = {self.lhs_attr}
        if not self.is_constant:
            attrs.add(self.rhs_attr)
        return attrs

    @property
    def tuple_vars(self) -> set[str]:
        """Tuple variables referenced (``{"i"}`` or ``{"i", "j"}``)."""
        out = {self.lhs_var}
        if not self.is_constant:
            out.add(self.rhs_var)
        return out

    def bind(self, relation) -> "Predicate":
        """Return a copy with the constant encoded against the schema.

        Categorical constants given as raw values (e.g. ``"Bachelors"``)
        become integer codes so they compare against stored columns.
        """
        if not self.is_constant:
            return self
        attr = relation[self.lhs_attr]
        const = self.const
        if attr.is_categorical and not isinstance(const, (int, np.integer)):
            const = attr.domain.encode(const)
        elif attr.is_numerical:
            const = float(const)
        return Predicate(self.lhs_var, self.lhs_attr, self.op,
                         CONST, None, const)

    def evaluate(self, value_of):
        """Evaluate the predicate given a value resolver.

        ``value_of(var, attr)`` must return a scalar or numpy array for
        the requested tuple variable and attribute; all returned shapes
        must be mutually broadcastable.  Returns a boolean array of the
        broadcast shape.
        """
        left = value_of(self.lhs_var, self.lhs_attr)
        if self.is_constant:
            right = self.const
        else:
            right = value_of(self.rhs_var, self.rhs_attr)
        return self.op.apply(left, right)

    def swapped(self) -> "Predicate":
        """The predicate with tuple variables i and j exchanged."""
        swap = {TUPLE_I: TUPLE_J, TUPLE_J: TUPLE_I, CONST: CONST}
        return Predicate(swap[self.lhs_var], self.lhs_attr, self.op,
                         swap[self.rhs_var], self.rhs_attr, self.const)

    def __repr__(self) -> str:
        lhs = f"t{self.lhs_var}.{self.lhs_attr}"
        if self.is_constant:
            rhs = repr(self.const)
        else:
            rhs = f"t{self.rhs_var}.{self.rhs_attr}"
        return f"{lhs} {self.op.value} {rhs}"
