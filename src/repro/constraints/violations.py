"""Vectorized violation counting for denial constraints.

Four entry points, matching the four places the paper counts violations:

* :func:`count_violations` — ``|V(phi, D)|`` on a full instance
  (Metric I, Table 2).  Unary DCs count violating tuples; binary DCs
  count violating *unordered pairs*, checking both orientations of the
  tuple variables.
* :func:`incremental_violations` — ``|V(phi, t_i | D_:i)|``: new
  violations created by appending one concrete tuple to a prefix
  (Eqn. 3 of the chain decomposition).
* :func:`candidate_violation_counts` — the sampler's inner loop
  (Algorithm 3, line 8): for a vector of candidate values ``v`` of the
  target attribute, how many new violations each candidate would create
  against the already-sampled prefix.  Vectorized over candidates x
  prefix rows with numpy broadcasting.
* :func:`violation_matrix` — the ``|D| x |Phi|`` matrix of Algorithm 5,
  ``V[i][l] = |V(phi_l, t_i | D - {t_i})|``.

Binary full counts use an FD fast path (group-by arithmetic, O(n)) when
the DC is FD-shaped, and blocked O(n^2) numpy evaluation otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.dc import DenialConstraint
from repro.constraints.predicate import TUPLE_I, TUPLE_J

#: Block edge for the O(n^2) pairwise mask evaluation; bounds peak
#: memory to ~BLOCK^2 booleans per predicate.
_BLOCK = 2048


def _pair_mask(dc: DenialConstraint, cols_a: dict, cols_b: dict) -> np.ndarray:
    """Boolean matrix M[a, b]: does (t_i = rows_a[a], t_j = rows_b[b])
    satisfy all predicates?  ``cols_*`` map attr -> 1-D arrays."""
    mask = None
    for pred in dc.predicates:
        def value_of(var, attr):
            if var == TUPLE_I:
                return cols_a[attr][:, None]
            return cols_b[attr][None, :]
        m = pred.evaluate(value_of)
        m = np.broadcast_to(
            m, (next(iter(cols_a.values())).shape[0],
                next(iter(cols_b.values())).shape[0]))
        mask = m.copy() if mask is None else (mask & m)
    return mask


def _unary_mask(dc: DenialConstraint, cols: dict) -> np.ndarray:
    """Boolean vector: does each single tuple satisfy all predicates?"""
    mask = None
    for pred in dc.predicates:
        def value_of(var, attr):
            return cols[attr]
        m = pred.evaluate(value_of)
        m = np.broadcast_to(m, next(iter(cols.values())).shape)
        mask = m.copy() if mask is None else (mask & m)
    return mask


def _columns(table, attrs) -> dict:
    return {a: table.column(a) for a in attrs}


def group_inverse(arrays) -> tuple[np.ndarray, np.ndarray]:
    """Exact ``(inverse, counts)`` group labels for aligned key columns.

    Groups on the *original* dtypes via a structured view instead of
    casting through float64 — so distinct int64 keys above 2**53 (which
    collide as floats) stay distinct.  ``inverse[i]`` is the group id of
    row ``i``; ``counts[g]`` is group ``g``'s size.
    """
    arrays = [np.ascontiguousarray(a) for a in arrays]
    n = arrays[0].shape[0]
    rec = np.empty(n, dtype=[(f"f{k}", a.dtype)
                             for k, a in enumerate(arrays)])
    for k, a in enumerate(arrays):
        rec[f"f{k}"] = a
    _, inverse, counts = np.unique(rec, return_inverse=True,
                                   return_counts=True)
    return inverse, counts


def _fd_pair_count(table, fd) -> int:
    """O(n log n) unordered-pair violation count for an FD-shaped DC.

    Within each determinant group of size g, the number of violating
    pairs is C(g,2) minus the concordant pairs sum C(c_v,2) over counts
    of each dependent value v.
    """
    lhs, rhs = fd
    key_cols = [table.column(a) for a in lhs]
    _, g_counts = group_inverse(key_cols)
    _, c_counts = group_inverse(key_cols + [table.column(rhs)])
    pairs = (g_counts * (g_counts - 1)) // 2
    concordant = (c_counts * (c_counts - 1)) // 2
    return int(pairs.sum() - concordant.sum())


def count_violations(dc: DenialConstraint, table) -> int:
    """``|V(phi, D)|``: tuples (unary) or unordered pairs (binary)."""
    cols = _columns(table, dc.attributes)
    if dc.is_unary:
        return int(_unary_mask(dc, cols).sum())
    fd = dc.as_fd()
    if fd is not None:
        return _fd_pair_count(table, fd)
    from repro.constraints.index import _blocked_pair_count
    return _blocked_pair_count(dc, cols)


def violating_pairs(dc: DenialConstraint, table,
                    limit: int | None = None) -> list[tuple[int, ...]]:
    """The concrete violation set ``V(phi, D)``, as tuple-id tuples.

    Unary DCs yield singleton tuples ``(i,)``; binary DCs yield
    unordered pairs ``(i, j)`` with ``i < j``.  ``limit`` truncates the
    scan early (useful for "show me a few offending rows" debugging —
    the full set is quadratic).  Order is deterministic: ascending by
    (first, second) id.
    """
    if limit is not None and limit < 0:
        raise ValueError("limit must be non-negative")
    cols = _columns(table, dc.attributes)
    out: list[tuple[int, ...]] = []
    if dc.is_unary:
        for i in np.flatnonzero(_unary_mask(dc, cols)):
            if limit is not None and len(out) >= limit:
                return out
            out.append((int(i),))
        return out
    n = table.n
    for a0 in range(0, n, _BLOCK):
        a1 = min(a0 + _BLOCK, n)
        block_a = {k: v[a0:a1] for k, v in cols.items()}
        for b0 in range(a0, n, _BLOCK):
            b1 = min(b0 + _BLOCK, n)
            block_b = {k: v[b0:b1] for k, v in cols.items()}
            either = (_pair_mask(dc, block_a, block_b)
                      | _pair_mask(dc, block_b, block_a).T)
            if a0 == b0:
                either = np.triu(either, k=1)
            rows, columns = np.nonzero(either)
            for r, c in zip(rows, columns):
                if limit is not None and len(out) >= limit:
                    return out
                out.append((int(a0 + r), int(b0 + c)))
    return out


def violating_pair_percentage(dc: DenialConstraint, table) -> float:
    """Metric I: ``100 * |V(phi, D)| / C(n, 2)`` (binary DCs) or
    ``100 * |V| / n`` (unary DCs)."""
    n = table.n
    if n < 2:
        return 0.0
    v = count_violations(dc, table)
    denom = n if dc.is_unary else n * (n - 1) / 2
    return 100.0 * v / denom


def incremental_violations(dc: DenialConstraint, new_row: dict,
                           prefix_cols: dict) -> int:
    """``|V(phi, t_i | D_:i)|`` for one fully-specified new tuple.

    ``new_row`` maps attr -> scalar (codes/floats); ``prefix_cols`` maps
    attr -> arrays of the already-placed tuples.  Only the attributes in
    ``dc.attributes`` are consulted.
    """
    counts = candidate_violation_counts(
        dc,
        target_attr=None,
        candidates=None,
        context=new_row,
        prefix_cols=prefix_cols,
    )
    return int(counts[0])


def candidate_violation_counts(dc: DenialConstraint, target_attr,
                               candidates, context: dict,
                               prefix_cols: dict) -> np.ndarray:
    """New-violation counts for each candidate target value.

    Implements Algorithm 3 line 8: the new tuple agrees with ``context``
    on every non-target attribute; ``candidates`` enumerates possible
    values for ``target_attr``.  Returns an int64 vector (one count per
    candidate) of new violations against the prefix (plus self, for
    unary DCs).

    Pass ``target_attr=None, candidates=None`` to evaluate a single
    fully-specified tuple (returns a length-1 vector).
    """
    target_values = None
    if candidates is not None:
        target_values = {target_attr: np.asarray(candidates)}
    return multi_candidate_violation_counts(dc, target_values, context,
                                            prefix_cols)


def multi_candidate_violation_counts(dc: DenialConstraint,
                                     target_values: dict | None,
                                     context: dict,
                                     prefix_cols: dict) -> np.ndarray:
    """Candidate counting where each candidate sets *several* attributes.

    Used by the hyper-attribute sampler (§4.3 grouping): candidate ``v``
    of a hyper attribute decodes to one value per member attribute, so
    ``target_values`` maps each member attribute to its length-d
    candidate column.  With ``target_values=None`` a single
    fully-specified tuple is evaluated (length-1 result).
    """
    if target_values:
        lengths = {np.asarray(v).shape[0] for v in target_values.values()}
        if len(lengths) != 1:
            raise ValueError("candidate columns must share one length")
        d = lengths.pop()
        target_values = {a: np.asarray(v) for a, v in target_values.items()}
    else:
        target_values = {}
        d = 1

    def new_value(attr):
        """Value of the new tuple, shaped (d, 1) for broadcasting."""
        if attr in target_values:
            return target_values[attr][:, None]
        return np.asarray(context[attr])  # scalar

    if dc.is_unary:
        mask = np.ones(d, dtype=bool)
        for pred in dc.predicates:
            def value_of(var, attr):
                v = new_value(attr)
                return v[:, 0] if isinstance(v, np.ndarray) and v.ndim == 2 else v
            m = pred.evaluate(value_of)
            mask = mask & np.broadcast_to(m, (d,))
        return mask.astype(np.int64)

    prefix_n = (next(iter(prefix_cols.values())).shape[0]
                if prefix_cols else 0)
    if prefix_n == 0:
        return np.zeros(d, dtype=np.int64)

    def orientation_mask(new_as: str) -> np.ndarray:
        """Mask (d, prefix_n) with the new tuple bound to ``new_as``."""
        other = TUPLE_J if new_as == TUPLE_I else TUPLE_I
        mask = None
        for pred in dc.predicates:
            def value_of(var, attr):
                if var == new_as:
                    return new_value(attr)
                if var == other:
                    return prefix_cols[attr][None, :]
                raise AssertionError(var)
            m = pred.evaluate(value_of)
            m = np.broadcast_to(m, (d, prefix_n))
            mask = m.copy() if mask is None else (mask & m)
        return mask

    either = orientation_mask(TUPLE_I) | orientation_mask(TUPLE_J)
    return either.sum(axis=1).astype(np.int64)


def violation_matrix(table, dcs) -> np.ndarray:
    """Algorithm 5's per-tuple violation matrix.

    ``V[i][l]`` is the number of violations of DC ``phi_l`` that tuple
    ``t_i`` participates in against the rest of the instance (or 0/1 for
    unary DCs).  Shape: ``(n, len(dcs))``, dtype float64 (it will be
    perturbed with Gaussian noise downstream).

    Counting is delegated to the shape-dispatching index engine
    (:func:`repro.constraints.index.per_row_violation_counts`): group
    arithmetic for FD-shaped DCs, group-restricted blocked evaluation
    for conditional-order DCs, full blocked evaluation otherwise.
    """
    from repro.constraints.index import per_row_violation_counts
    out = np.zeros((table.n, len(dcs)), dtype=np.float64)
    for l, dc in enumerate(dcs):
        out[:, l] = per_row_violation_counts(dc, table).astype(np.float64)
    return out


def total_weighted_violations(table, dcs, weights: dict) -> float:
    """``sum_phi w_phi * |V(phi, D)|`` — the exponent of Eqn. (1)."""
    return float(sum(weights[dc.name] * count_violations(dc, table)
                     for dc in dcs))
