"""Denial constraints.

A denial constraint (DC) is a universally quantified negated conjunction
``forall t_i, t_j: not (P_1 and ... and P_m)`` (§2.1).  A *violation* is
an assignment of real tuples to the tuple variables under which all
predicates hold simultaneously.

This module gives DCs identity (a name), hardness (hard DCs admit no
violations in the true data; soft DCs do), and the structural
classification the rest of the system needs:

* unary vs binary (how many tuple variables appear);
* the participating attribute set ``A_phi``, which drives the
  chain-decomposition assignment ``Phi_{A_j}`` (§3.2) and the
  constraint-aware sequencing (Algorithm 4);
* FD-shape detection (``X -> Y``), which feeds Algorithm 4 and the
  hard-FD lookup optimisation of §7.3.6.
"""

from __future__ import annotations

from repro.constraints.predicate import CONST, Operator, Predicate, TUPLE_I, TUPLE_J


class DenialConstraint:
    """A named denial constraint over a single relation.

    Parameters
    ----------
    name:
        Identifier used in reports (e.g. ``"phi_a1"``).
    predicates:
        The conjunction ``P_1 ... P_m``.  At most two tuple variables
        (``t_i``, ``t_j``) may appear.
    hard:
        True if the constraint is hard (weight is treated as infinite
        during sampling); False for soft DCs whose weight is learned by
        Algorithm 5.
    """

    def __init__(self, name: str, predicates, hard: bool = True):
        predicates = list(predicates)
        if not predicates:
            raise ValueError("a DC needs at least one predicate")
        self.name = name
        self.predicates = predicates
        self.hard = bool(hard)
        vars_used = set()
        for p in predicates:
            vars_used |= p.tuple_vars
        vars_used.discard(CONST)
        if vars_used - {TUPLE_I, TUPLE_J}:
            raise ValueError(f"unsupported tuple variables: {vars_used}")
        self._vars = vars_used
        # DCs are immutable after construction; the structural queries
        # below sit on sampler hot paths, so compute them once.
        self._is_unary = (vars_used <= {TUPLE_I} or vars_used <= {TUPLE_J})
        attrs: set[str] = set()
        for p in predicates:
            attrs |= p.attributes
        self._attributes = frozenset(attrs)
        self._fd_shape = self._compute_fd()
        self._order_shape = self._compute_conditional_order()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def is_unary(self) -> bool:
        """True if only one tuple variable appears (single-tuple DC)."""
        return self._is_unary

    @property
    def is_binary(self) -> bool:
        return not self.is_unary

    @property
    def attributes(self) -> frozenset[str]:
        """The participating attribute set ``A_phi``."""
        return self._attributes

    def bind(self, relation) -> "DenialConstraint":
        """Encode constant predicates against a schema (see Predicate.bind)."""
        return DenialConstraint(
            self.name, [p.bind(relation) for p in self.predicates], self.hard
        )

    def active_at(self, prefix_attrs) -> bool:
        """True if all participating attributes are within ``prefix_attrs``.

        Used to compute ``Phi_{A_j}``: the DC becomes *active* at the
        first position of the schema sequence whose prefix covers
        ``A_phi`` (Example 3).
        """
        return self.attributes <= set(prefix_attrs)

    # ------------------------------------------------------------------
    # FD shape
    # ------------------------------------------------------------------
    def as_fd(self) -> tuple[tuple[str, ...], str] | None:
        """If this DC encodes a functional dependency, return ``(X, y)``.

        An FD-shaped DC is a binary DC whose predicates are all of the
        form ``t_i.A = t_j.A`` (the determinant set X) plus exactly one
        ``t_i.B != t_j.B`` (the dependent attribute y):
        ``not(t_i.X = t_j.X and t_i.y != t_j.y)`` is ``X -> y``.
        Returns None if the DC is not FD-shaped.
        """
        return self._fd_shape

    def _compute_fd(self):
        if self.is_unary:
            return None
        lhs, rhs = [], []
        for p in self.predicates:
            same_attr = (not p.is_constant and p.lhs_attr == p.rhs_attr
                         and p.lhs_var != p.rhs_var)
            if not same_attr:
                return None
            if p.op is Operator.EQ:
                lhs.append(p.lhs_attr)
            elif p.op is Operator.NE:
                rhs.append(p.lhs_attr)
            else:
                return None
        if len(rhs) != 1 or not lhs:
            return None
        return tuple(sorted(lhs)), rhs[0]

    def as_conditional_order(self):
        """Detect the conditional-order shape used by monotonicity DCs.

        Matches binary DCs of the form
        ``not(ti.E1 = tj.E1 and ... and ti.A > tj.A and ti.B < tj.B)``
        — equality predicates on a (possibly empty) condition set plus
        exactly one strictly-increasing/strictly-decreasing pair (the
        paper's cap_gain/cap_loss and salary/rate constraints).  Returns
        ``(eq_attrs, greater_attr, less_attr)`` or None.

        The shape powers the sampler's feasible-interval candidate
        augmentation: within an equality group, the zero-violation
        values of one order attribute given the other form a closed
        interval whose endpoints are themselves feasible.
        """
        return self._order_shape

    def _compute_conditional_order(self):
        if self.is_unary:
            return None
        eq_attrs: list[str] = []
        greater: list[str] = []
        less: list[str] = []
        for p in self.predicates:
            cross = (not p.is_constant and p.lhs_attr == p.rhs_attr
                     and p.lhs_var != p.rhs_var)
            if not cross:
                return None
            # Normalise so the i-side is on the left.
            op = p.op if p.lhs_var == TUPLE_I else p.op.flip()
            if op is Operator.EQ:
                eq_attrs.append(p.lhs_attr)
            elif op is Operator.GT:
                greater.append(p.lhs_attr)
            elif op is Operator.LT:
                less.append(p.lhs_attr)
            else:
                return None
        if len(greater) != 1 or len(less) != 1:
            return None
        return sorted(eq_attrs), greater[0], less[0]

    @classmethod
    def fd(cls, name: str, determinant, dependent: str,
           hard: bool = True) -> "DenialConstraint":
        """Convenience constructor for a functional dependency ``X -> y``."""
        determinant = ([determinant] if isinstance(determinant, str)
                       else list(determinant))
        preds = [Predicate(TUPLE_I, a, Operator.EQ, TUPLE_J, a)
                 for a in determinant]
        preds.append(Predicate(TUPLE_I, dependent, Operator.NE,
                               TUPLE_J, dependent))
        return cls(name, preds, hard=hard)

    def __repr__(self) -> str:
        body = " and ".join(repr(p) for p in self.predicates)
        kind = "hard" if self.hard else "soft"
        return f"DC[{self.name}, {kind}]: not({body})"


def active_dc_map(dcs, sequence) -> dict[str, list]:
    """Partition DCs by the sequence position at which they activate.

    Returns ``{attr_name: [dcs that activate at this attribute]}`` —
    the ``Phi_{A_j}`` sets of §3.2: a DC activates at the first
    attribute of ``sequence`` whose prefix (inclusive) covers all of the
    DC's participating attributes.  DCs referencing attributes outside
    the sequence raise ``ValueError``.
    """
    out: dict[str, list] = {a: [] for a in sequence}
    seen: set[str] = set()
    position = {a: p for p, a in enumerate(sequence)}
    for dc in dcs:
        missing = dc.attributes - set(sequence)
        if missing:
            raise ValueError(
                f"DC {dc.name} references attributes {sorted(missing)} "
                f"not in the sequence"
            )
        last = max(position[a] for a in dc.attributes)
        out[sequence[last]].append(dc)
        seen.add(dc.name)
    return out
