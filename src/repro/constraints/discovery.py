"""Approximate denial-constraint discovery.

Experiment 8 of the paper scales the number of input DCs from 2 to 128
by "discovering approximate DCs to simulate the knowledge from the
domain expert" (citing Pena et al., VLDB 2019).  This module provides a
compact discovery routine over two candidate families:

* **FD candidates** ``not(ti.A = tj.A and ti.B != tj.B)`` for every
  ordered attribute pair (A, B) — approximate functional dependencies;
* **order candidates** ``not(ti.A > tj.A and ti.B < tj.B)`` for every
  unordered pair of numerical attributes — monotone co-movement
  constraints like the paper's cap_gain/cap_loss DC.

Each candidate is scored by its violating-pair rate on a row sample;
candidates at or below ``max_violation_rate`` are returned sorted by
rate (cleanest first), capped at ``limit``.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.dc import DenialConstraint
from repro.constraints.predicate import Operator, Predicate, TUPLE_I, TUPLE_J
from repro.constraints.violations import violating_pair_percentage


def _fd_candidate(a: str, b: str, idx: int) -> DenialConstraint:
    return DenialConstraint(
        f"fd_{idx}_{a}_to_{b}",
        [Predicate(TUPLE_I, a, Operator.EQ, TUPLE_J, a),
         Predicate(TUPLE_I, b, Operator.NE, TUPLE_J, b)],
        hard=False,
    )


def _order_candidate(a: str, b: str, idx: int) -> DenialConstraint:
    return DenialConstraint(
        f"ord_{idx}_{a}_{b}",
        [Predicate(TUPLE_I, a, Operator.GT, TUPLE_J, a),
         Predicate(TUPLE_I, b, Operator.LT, TUPLE_J, b)],
        hard=False,
    )


def discover_dcs(table, max_violation_rate: float = 5.0, limit: int = 128,
                 sample_size: int = 500, seed: int = 0) -> list[DenialConstraint]:
    """Discover approximate DCs from an instance.

    Parameters
    ----------
    table:
        The instance to mine.  (In the paper's pipeline this is run on
        *public or already-released* data; it is an input-preparation
        step for Experiment 8, not part of the private mechanism.)
    max_violation_rate:
        Keep candidates whose violating-pair percentage on the sample is
        at most this threshold.
    limit:
        Maximum number of DCs returned.
    sample_size:
        Rows sampled for scoring (O(sample^2) per candidate).
    seed:
        RNG seed for the row sample.
    """
    rng = np.random.default_rng(seed)
    if table.n > sample_size:
        idx = rng.choice(table.n, size=sample_size, replace=False)
        sample = table.take(idx)
    else:
        sample = table

    names = table.relation.names
    numeric = [a.name for a in table.relation if a.is_numerical]
    candidates: list[DenialConstraint] = []
    idx = 0
    for a in names:
        for b in names:
            if a == b:
                continue
            candidates.append(_fd_candidate(a, b, idx))
            idx += 1
    for p, a in enumerate(numeric):
        for b in numeric[p + 1:]:
            candidates.append(_order_candidate(a, b, idx))
            idx += 1

    scored = []
    for dc in candidates:
        rate = violating_pair_percentage(dc, sample)
        if rate <= max_violation_rate:
            scored.append((rate, dc))
    scored.sort(key=lambda pair: (pair[0], pair[1].name))
    return [dc for _, dc in scored[:limit]]
