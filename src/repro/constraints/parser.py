"""A small textual parser for denial constraints.

Grammar (ASCII rendering of the paper's first-order formulae)::

    dc        := "not(" predicate ( "and" predicate )* ")"
    predicate := operand op operand
    operand   := tuplevar "." attr | constant
    tuplevar  := "ti" | "tj" | "t1" | "t2"
    op        := "==" | "=" | "!=" | ">" | ">=" | "<" | "<="
    constant  := number | 'single-quoted string' | "double-quoted string"

Examples::

    not(ti.edu == tj.edu and ti.edu_num != tj.edu_num)
    not(ti.cap_gain > tj.cap_gain and ti.cap_loss < tj.cap_loss)
    not(ti.age < 10 and ti.cap_gain > 1000000)
"""

from __future__ import annotations

import re

from repro.constraints.dc import DenialConstraint
from repro.constraints.predicate import CONST, Operator, Predicate, TUPLE_I, TUPLE_J

_TUPLE_VARS = {"ti": TUPLE_I, "t1": TUPLE_I, "tj": TUPLE_J, "t2": TUPLE_J}

# Order matters: two-character operators must be matched first.
_OPS = [
    (">=", Operator.GE), ("<=", Operator.LE), ("!=", Operator.NE),
    ("==", Operator.EQ), (">", Operator.GT), ("<", Operator.LT),
    ("=", Operator.EQ),
]

_OPERAND_RE = re.compile(
    r"\s*(?:"
    r"(?P<ref>(ti|tj|t1|t2))\.(?P<attr>[A-Za-z_][A-Za-z0-9_]*)"
    r"|'(?P<sq>[^']*)'"
    r'|"(?P<dq>[^"]*)"'
    r"|(?P<num>-?\d+(?:\.\d+)?)"
    r")\s*"
)


class DCParseError(ValueError):
    """Raised on malformed DC text."""


def _parse_operand(text: str):
    """Return ((var, attr) | ("const", value), rest-of-text)."""
    m = _OPERAND_RE.match(text)
    if not m:
        raise DCParseError(f"cannot parse operand at: {text!r}")
    if m.group("ref"):
        return (_TUPLE_VARS[m.group("ref")], m.group("attr")), text[m.end():]
    if m.group("sq") is not None:
        return (CONST, m.group("sq")), text[m.end():]
    if m.group("dq") is not None:
        return (CONST, m.group("dq")), text[m.end():]
    num = m.group("num")
    value = float(num) if "." in num else int(num)
    return (CONST, value), text[m.end():]


def _parse_predicate(text: str) -> Predicate:
    left, rest = _parse_operand(text)
    if left[0] == CONST:
        raise DCParseError(f"predicate lhs must be a tuple ref: {text!r}")
    op = None
    for symbol, candidate in _OPS:
        if rest.startswith(symbol):
            op = candidate
            rest = rest[len(symbol):]
            break
    if op is None:
        raise DCParseError(f"missing operator in predicate: {text!r}")
    right, tail = _parse_operand(rest)
    if tail.strip():
        raise DCParseError(f"trailing junk in predicate: {tail!r}")
    lhs_var, lhs_attr = left
    if right[0] == CONST:
        return Predicate(lhs_var, lhs_attr, op, CONST, None, right[1])
    rhs_var, rhs_attr = right
    return Predicate(lhs_var, lhs_attr, op, rhs_var, rhs_attr)


def parse_dc(text: str, name: str = "dc", hard: bool = True,
             relation=None) -> DenialConstraint:
    """Parse a DC from text; optionally bind constants to a schema.

    Parameters
    ----------
    text:
        The constraint in the grammar documented above.
    name:
        Identifier of the constraint.
    hard:
        Hardness flag (see :class:`DenialConstraint`).
    relation:
        If given, constants in predicates are encoded against the
        schema's domains (categorical constants become codes).
    """
    stripped = text.strip()
    lowered = stripped.lower()
    if lowered.startswith("not(") and stripped.endswith(")"):
        body = stripped[stripped.index("(") + 1:-1]
    elif stripped.startswith("¬(") and stripped.endswith(")"):
        body = stripped[stripped.index("(") + 1:-1]
    else:
        raise DCParseError(f"DC must be of the form not(...): {text!r}")
    parts = re.split(r"\band\b|∧", body)
    predicates = [_parse_predicate(p) for p in parts]
    dc = DenialConstraint(name, predicates, hard=hard)
    if relation is not None:
        dc = dc.bind(relation)
    return dc
