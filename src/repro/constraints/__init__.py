"""Denial-constraint substrate.

Implements §2.1 of the paper: predicates, denial constraints (DCs), a
small textual parser, and — most importantly — the violation-counting
engine that the constraint-aware sampler (Algorithm 3), the weight
learner (Algorithm 5), and the evaluation Metric I are built on.

Counting conventions (matching the paper):

* A *unary* DC is violated by single tuples; ``V(phi, D)`` is a set of
  tuple ids.
* A *binary* DC is violated by unordered tuple pairs ("tuple groups");
  a pair ``{a, b}`` violates if the predicate conjunction holds under
  either orientation ``(i=a, j=b)`` or ``(i=b, j=a)``.
* ``V(phi, t_i | D_:i)`` — the incremental count used by the chain
  decomposition Eqn. (3) — is the number of new violations created by
  appending ``t_i`` after the prefix ``D_:i``.

Two counting engines share these conventions: the scan engine of
:mod:`repro.constraints.violations` (stateless, re-evaluates predicates
against the instance) and the incremental indexes of
:mod:`repro.constraints.index` (per-DC state updated as tuples are
appended/removed/rewritten; O(group) probes, bit-identical counts).
The hot paths — Algorithm 3's sampler, repair passes, Algorithm 5's
violation matrix — run on the indexes and fall back to scans for
shapes without exploitable structure.
"""

from repro.constraints.predicate import Operator, Predicate
from repro.constraints.dc import DenialConstraint
from repro.constraints.parser import parse_dc
from repro.constraints.violations import (
    candidate_violation_counts,
    count_violations,
    incremental_violations,
    multi_candidate_violation_counts,
    violating_pair_percentage,
    violating_pairs,
    violation_matrix,
)
from repro.constraints.algebra import (
    dc_signature,
    fd_closure,
    implied_fd,
    is_trivial,
    minimize_dcs,
)
from repro.constraints.discovery import discover_dcs
from repro.constraints.fd import FDIndex, extract_fds
from repro.constraints.index import (
    FDViolationIndex,
    GenericViolationIndex,
    OrderViolationIndex,
    UnaryViolationIndex,
    ViolationIndex,
    build_index,
    per_row_violation_counts,
)

__all__ = [
    "DenialConstraint",
    "FDIndex",
    "FDViolationIndex",
    "GenericViolationIndex",
    "OrderViolationIndex",
    "UnaryViolationIndex",
    "ViolationIndex",
    "build_index",
    "per_row_violation_counts",
    "Operator",
    "Predicate",
    "candidate_violation_counts",
    "count_violations",
    "dc_signature",
    "discover_dcs",
    "fd_closure",
    "implied_fd",
    "is_trivial",
    "minimize_dcs",
    "extract_fds",
    "incremental_violations",
    "multi_candidate_violation_counts",
    "parse_dc",
    "violating_pair_percentage",
    "violating_pairs",
    "violation_matrix",
]
