"""Functional-dependency utilities.

Algorithm 4 (constraint-aware sequencing) consumes "FDs from Phi", and
the hard-FD lookup optimisation of §7.3.6 replaces violation checking
with a direct determinant -> dependent lookup while sampling.  Both are
implemented here.
"""

from __future__ import annotations

import numpy as np


def extract_fds(dcs) -> list[tuple[tuple[str, ...], str, object]]:
    """Return ``(determinant, dependent, dc)`` for each FD-shaped DC.

    Order follows the input DC list; non-FD constraints are skipped.
    """
    out = []
    for dc in dcs:
        fd = dc.as_fd()
        if fd is not None:
            out.append((fd[0], fd[1], dc))
    return out


class FDIndex:
    """Incremental determinant -> dependent index for one hard FD.

    While the sampler fills a column left-to-right, already-sampled
    tuples pin the dependent value of their determinant group.  The
    index answers "what dependent value (if any) is already forced for
    this determinant?" in O(1), replacing the O(prefix) violation scan
    for hard FDs (§7.3.6's second optimisation).
    """

    def __init__(self, determinant, dependent: str):
        self.determinant = tuple(determinant)
        self.dependent = dependent
        self._forced: dict[tuple, object] = {}

    def key_of(self, row: dict) -> tuple:
        """Build the determinant key from a row dict."""
        return tuple(row[a] for a in self.determinant)

    def forced_value(self, row: dict):
        """Dependent value forced by earlier tuples, or None."""
        return self._forced.get(self.key_of(row))

    def record(self, row: dict, value) -> None:
        """Register that ``row``'s determinant group now maps to ``value``."""
        key = self.key_of(row)
        if key not in self._forced:
            self._forced[key] = value

    def rebuild(self, cols: dict, upto: int) -> None:
        """Rebuild the index from the first ``upto`` rows of ``cols``."""
        self._forced.clear()
        if upto == 0:
            return
        keys = np.stack([np.asarray(cols[a][:upto]) for a in self.determinant],
                        axis=1)
        deps = np.asarray(cols[self.dependent][:upto])
        for key_row, dep in zip(keys, deps):
            key = tuple(key_row.tolist())
            if key not in self._forced:
                self._forced[key] = dep.item() if hasattr(dep, "item") else dep

    def __len__(self) -> int:
        return len(self._forced)
