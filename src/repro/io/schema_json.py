"""JSON serialization of relations and domains.

The schema (attribute names, domains, and public bounds) is part of the
DP threat model's public knowledge, so persisting it alongside synthetic
data leaks nothing.  The format is versioned to allow evolution::

    {
      "format": "repro.schema/1",
      "attributes": [
        {"name": "age", "domain": {"kind": "numerical", "low": 17.0,
                                   "high": 90.0, "integer": true,
                                   "bins": 32}},
        {"name": "edu", "domain": {"kind": "categorical",
                                   "values": ["Bachelors", "HS-grad"]}}
      ]
    }
"""

from __future__ import annotations

import json

from repro.schema.domain import CategoricalDomain, Domain, NumericalDomain
from repro.schema.relation import Attribute, Relation

FORMAT_TAG = "repro.schema/1"


def domain_to_dict(domain: Domain) -> dict:
    """Serialize a domain to a JSON-compatible dict."""
    if domain.is_categorical:
        return {"kind": "categorical", "values": list(domain.values)}
    return {
        "kind": "numerical",
        "low": domain.low,
        "high": domain.high,
        "integer": domain.integer,
        "bins": domain.bins,
    }


def domain_from_dict(data: dict) -> Domain:
    """Inverse of :func:`domain_to_dict`."""
    kind = data.get("kind")
    if kind == "categorical":
        return CategoricalDomain(data["values"])
    if kind == "numerical":
        return NumericalDomain(
            data["low"], data["high"],
            integer=data.get("integer", False),
            bins=data.get("bins", 32),
        )
    raise ValueError(f"unknown domain kind {kind!r}")


def relation_to_dict(relation: Relation) -> dict:
    """Serialize a relation (ordered attributes + domains) to a dict."""
    return {
        "format": FORMAT_TAG,
        "attributes": [
            {"name": attr.name, "domain": domain_to_dict(attr.domain)}
            for attr in relation
        ],
    }


def relation_from_dict(data: dict) -> Relation:
    """Inverse of :func:`relation_to_dict`."""
    tag = data.get("format")
    if tag != FORMAT_TAG:
        raise ValueError(
            f"unsupported schema format {tag!r}; expected {FORMAT_TAG!r}"
        )
    attributes = [
        Attribute(entry["name"], domain_from_dict(entry["domain"]))
        for entry in data["attributes"]
    ]
    return Relation(attributes)


def save_relation(relation: Relation, path: str) -> None:
    """Write a relation to a JSON file."""
    with open(path, "w") as f:
        json.dump(relation_to_dict(relation), f, indent=2)
        f.write("\n")


def load_relation(path: str) -> Relation:
    """Read a relation from a JSON file."""
    with open(path) as f:
        return relation_from_dict(json.load(f))
