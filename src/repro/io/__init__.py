"""Persistence formats for schemas, constraints, and dataset bundles.

Kamino's inputs are a database instance, its schema (with domains), and
a set of denial constraints.  This package gives each of those a stable
on-disk form so a synthesis run is reproducible from files alone:

* :mod:`repro.io.schema_json` — relation/domain <-> JSON;
* :mod:`repro.io.dc_text` — denial constraints <-> the textual grammar
  of :mod:`repro.constraints.parser`, one constraint per line;
* :mod:`repro.io.bundle` — a dataset directory (``schema.json`` +
  ``data.csv`` + ``dcs.txt``) loaded and saved as one unit.
"""

from repro.io.bundle import DatasetBundle, load_bundle, save_bundle
from repro.io.dc_text import format_dc, format_predicate, load_dcs, save_dcs
from repro.io.schema_json import (
    domain_from_dict,
    domain_to_dict,
    load_relation,
    relation_from_dict,
    relation_to_dict,
    save_relation,
)

__all__ = [
    "DatasetBundle",
    "domain_from_dict",
    "domain_to_dict",
    "format_dc",
    "format_predicate",
    "load_bundle",
    "load_dcs",
    "load_relation",
    "relation_from_dict",
    "relation_to_dict",
    "save_bundle",
    "save_dcs",
    "save_relation",
]
