"""Text format for denial constraint sets.

One constraint per line, in the grammar of
:mod:`repro.constraints.parser` prefixed by a name and hardness flag::

    # monotone capital gains/losses
    phi_a1 hard: not(ti.edu == tj.edu and ti.edu_num != tj.edu_num)
    phi_b2 soft: not(ti.a12 != tj.a12 and ti.a13 <= tj.a13)

Blank lines and ``#`` comments are ignored.  :func:`format_dc` is the
inverse of :func:`repro.constraints.parser.parse_dc`: formatting a DC
and re-parsing it yields an equivalent constraint.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.dc import DenialConstraint
from repro.constraints.parser import parse_dc
from repro.constraints.predicate import CONST, Operator, Predicate

#: Operators rendered with their parser spelling (EQ prints as ``==``
#: because a bare ``=`` reads like assignment).
_OP_TEXT = {
    Operator.EQ: "==",
    Operator.NE: "!=",
    Operator.GT: ">",
    Operator.GE: ">=",
    Operator.LT: "<",
    Operator.LE: "<=",
}


def _format_const(predicate: Predicate, relation=None) -> str:
    """Render a constant, decoding categorical codes when possible."""
    const = predicate.const
    if relation is not None and predicate.lhs_attr in relation:
        attr = relation[predicate.lhs_attr]
        if attr.is_categorical and isinstance(const, (int, np.integer)):
            const = attr.domain.decode(const)
    if isinstance(const, str):
        if "'" in const:
            return f'"{const}"'
        return f"'{const}'"
    if isinstance(const, (float, np.floating)) and float(const).is_integer():
        return str(int(const))
    return str(const)


def format_predicate(predicate: Predicate, relation=None) -> str:
    """Render one predicate in the parser grammar.

    Pass the ``relation`` the DC was bound against to decode categorical
    constant codes back to raw values (making the output re-parseable
    with ``parse_dc(..., relation=relation)``).
    """
    lhs = f"t{predicate.lhs_var}.{predicate.lhs_attr}"
    op = _OP_TEXT[predicate.op]
    if predicate.rhs_var == CONST:
        return f"{lhs} {op} {_format_const(predicate, relation)}"
    rhs = f"t{predicate.rhs_var}.{predicate.rhs_attr}"
    return f"{lhs} {op} {rhs}"


def format_dc(dc: DenialConstraint, relation=None) -> str:
    """Render a DC body as ``not(P_1 and ... and P_m)``."""
    body = " and ".join(format_predicate(p, relation) for p in dc.predicates)
    return f"not({body})"


def save_dcs(dcs, path: str, relation=None) -> None:
    """Write constraints to a file, one ``name hard|soft: not(...)`` line
    each."""
    with open(path, "w") as f:
        for dc in dcs:
            hardness = "hard" if dc.hard else "soft"
            f.write(f"{dc.name} {hardness}: {format_dc(dc, relation)}\n")


def load_dcs(path: str, relation=None) -> list[DenialConstraint]:
    """Read a constraint file written by :func:`save_dcs`.

    Passing ``relation`` binds constants against the schema (categorical
    raw values become codes), matching what :class:`Kamino` expects.
    """
    out: list[DenialConstraint] = []
    seen: set[str] = set()
    with open(path) as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            head, sep, body = line.partition(":")
            if not sep:
                raise ValueError(
                    f"{path}:{lineno}: expected 'name hard|soft: not(...)'"
                )
            parts = head.split()
            if len(parts) != 2 or parts[1] not in ("hard", "soft"):
                raise ValueError(
                    f"{path}:{lineno}: bad header {head!r}; expected "
                    f"'name hard' or 'name soft'"
                )
            name, hardness = parts
            if name in seen:
                raise ValueError(f"{path}:{lineno}: duplicate DC name {name!r}")
            seen.add(name)
            out.append(parse_dc(body.strip(), name=name,
                                hard=hardness == "hard", relation=relation))
    return out
