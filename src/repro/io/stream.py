"""Streaming table writers: chunked draws to disk, never the full table.

:meth:`FittedKamino.sample_stream` yields bounded-memory
:class:`~repro.schema.table.Table` chunks; the writers here append them
to a single on-disk table so an n=10M draw streams straight through a
fixed-size buffer.  Formats, picked from the file suffix:

* ``.csv`` — always available (stdlib ``csv``): decoded values with a
  header row, readable back by :meth:`Table.from_csv`;
* ``.parquet`` — columnar with row groups, one per chunk;
* ``.arrow`` / ``.feather`` — the Arrow IPC file format, one record
  batch per chunk.

The columnar formats need ``pyarrow``, which the toolchain does not
bundle; opening them without it raises a clear error naming the gap
(CSV keeps working regardless).
"""

from __future__ import annotations

import csv
import os

import numpy as np

from repro.faults import fault_point

#: File suffix -> stream format; suffixes outside this map are not
#: streamable table files (the CLI treats them as bundle directories).
STREAM_SUFFIXES = {
    ".csv": "csv",
    ".parquet": "parquet",
    ".arrow": "arrow",
    ".feather": "feather",
}


def stream_format_for(path: str) -> str | None:
    """The stream format a path's suffix selects, or None."""
    return STREAM_SUFFIXES.get(os.path.splitext(path)[1].lower())


def decode_columns(table) -> dict[str, np.ndarray]:
    """Vectorized :meth:`Table.decoded_row` over a whole chunk:
    categorical codes become raw domain values, numericals pass
    through as float64."""
    out: dict[str, np.ndarray] = {}
    for attr in table.relation:
        col = table.column(attr.name)
        if attr.is_categorical:
            values = np.asarray(attr.domain.values, dtype=object)
            out[attr.name] = values[col]
        else:
            out[attr.name] = col
    return out


class _CsvStreamWriter:
    def __init__(self, path: str, relation):
        self.relation = relation
        self.rows = 0
        self._file = open(path, "w", newline="")
        self._writer = csv.writer(self._file)
        self._writer.writerow(relation.names)

    def write(self, table) -> None:
        decoded = decode_columns(table)
        columns = [decoded[name].tolist() for name in self.relation.names]
        self._writer.writerows(zip(*columns))
        self.rows += table.n

    def close(self) -> None:
        self._file.close()


class _ArrowStreamWriter:
    """Parquet / Arrow-IPC writer, one row group (record batch) per
    chunk.  Requires ``pyarrow``."""

    def __init__(self, path: str, relation, fmt: str):
        try:
            import pyarrow as pa
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise RuntimeError(
                f"writing {fmt!r} needs pyarrow, which is not installed "
                f"in this environment; stream to a .csv path instead"
            ) from exc
        self._pa = pa
        self.relation = relation
        self.rows = 0
        fields = []
        for attr in relation:
            if attr.is_categorical:
                sample = attr.domain.values[0] if attr.domain.values else ""
                typ = (pa.string() if isinstance(sample, str)
                       else pa.from_numpy_dtype(np.asarray(sample).dtype))
            else:
                typ = pa.float64()
            fields.append(pa.field(attr.name, typ))
        self._schema = pa.schema(fields)
        if fmt == "parquet":
            import pyarrow.parquet as pq
            self._writer = pq.ParquetWriter(path, self._schema)
            self._write_batch = self._write_parquet
        else:
            self._sink = pa.OSFile(path, "wb")
            self._writer = pa.ipc.new_file(self._sink, self._schema)
            self._write_batch = self._write_ipc

    def _batch(self, table):
        decoded = decode_columns(table)
        arrays = [self._pa.array(decoded[f.name].tolist(), type=f.type)
                  for f in self._schema]
        return self._pa.record_batch(arrays, schema=self._schema)

    def _write_parquet(self, batch) -> None:
        self._writer.write_table(self._pa.Table.from_batches([batch]))

    def _write_ipc(self, batch) -> None:
        self._writer.write_batch(batch)

    def write(self, table) -> None:
        self._write_batch(self._batch(table))
        self.rows += table.n

    def close(self) -> None:
        self._writer.close()
        if hasattr(self, "_sink"):
            self._sink.close()


def open_stream_writer(path: str, relation, fmt: str | None = None):
    """A chunk writer for ``path`` (format from suffix unless given)."""
    fmt = fmt or stream_format_for(path)
    if fmt is None:
        raise ValueError(
            f"cannot infer a stream format from {path!r}; expected a "
            f"suffix in {sorted(STREAM_SUFFIXES)}")
    if fmt == "csv":
        return _CsvStreamWriter(path, relation)
    if fmt in ("parquet", "arrow", "feather"):
        return _ArrowStreamWriter(path, relation, fmt)
    raise ValueError(f"unknown stream format {fmt!r}")


def write_table_stream(path: str, relation, chunks,
                       fmt: str | None = None) -> int:
    """Drain ``chunks`` (an iterable of Tables) into ``path``; returns
    the total row count.  Peak memory holds one chunk.

    The stream lands in a same-directory tmp file and is renamed onto
    ``path`` only after every chunk is written and the writer closed:
    a draw that dies mid-stream — worker crash, ENOSPC, the process
    killed outright — never leaves a truncated csv/parquet at the
    destination.  The format is resolved from ``path`` (the tmp suffix
    plays no part), and the tmp file is removed on any in-process
    failure.
    """
    fmt = fmt or stream_format_for(path)
    if fmt is None:
        raise ValueError(
            f"cannot infer a stream format from {path!r}; expected a "
            f"suffix in {sorted(STREAM_SUFFIXES)}")
    tmp = f"{path}.tmp-{os.getpid()}"
    try:
        writer = open_stream_writer(tmp, relation, fmt)
        try:
            for chunk in chunks:
                fault_point("stream.write")
                writer.write(chunk)
        finally:
            writer.close()
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    os.replace(tmp, path)
    return writer.rows
