"""Dataset bundles: a directory holding data + schema + constraints.

A bundle is the unit a data owner hands to Kamino::

    mydata/
      schema.json   # relation (attribute order, domains)
      data.csv      # decoded rows, header = attribute names
      dcs.txt       # denial constraints (may be absent)

:func:`save_bundle` / :func:`load_bundle` round-trip a
:class:`DatasetBundle`; the CLI's ``synthesize`` command consumes this
layout directly.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field

from repro.constraints.dc import DenialConstraint
from repro.io.dc_text import load_dcs, save_dcs
from repro.io.schema_json import load_relation, save_relation
from repro.schema.relation import Relation
from repro.schema.table import Table

SCHEMA_FILE = "schema.json"
DATA_FILE = "data.csv"
DCS_FILE = "dcs.txt"


@dataclass
class DatasetBundle:
    """A table plus its constraints, as loaded from a bundle directory."""

    relation: Relation
    table: Table
    dcs: list[DenialConstraint] = field(default_factory=list)

    @property
    def n(self) -> int:
        return self.table.n


def _coerce_categorical(domain, cell: str):
    """Map a CSV string cell back into a categorical domain value.

    CSV stores everything as text; domains may hold ints or floats (the
    BR2000 generator uses integer category labels).  Try the raw string
    first, then int/float readings.
    """
    if domain.contains(cell):
        return cell
    try:
        as_int = int(cell)
    except ValueError:
        pass
    else:
        if domain.contains(as_int):
            return as_int
    try:
        as_float = float(cell)
    except ValueError:
        pass
    else:
        if domain.contains(as_float):
            return as_float
    raise ValueError(f"cell {cell!r} not in domain {domain!r}")


def read_table_csv(relation: Relation, path: str) -> Table:
    """Read a decoded-values CSV into a table.

    More forgiving than :meth:`Table.from_csv`: categorical cells are
    coerced (string -> int -> float) until they match the domain, so
    domains with non-string values round-trip.
    """
    with open(path, newline="") as f:
        reader = csv.reader(f)
        header = next(reader)
        if header != relation.names:
            raise ValueError(
                f"CSV header {header} does not match schema {relation.names}"
            )
        rows = []
        for raw in reader:
            if len(raw) != relation.arity:
                raise ValueError(
                    f"{path}: row {len(rows) + 2} has {len(raw)} cells, "
                    f"expected {relation.arity}"
                )
            row = []
            for attr, cell in zip(relation, raw):
                if attr.is_categorical:
                    row.append(_coerce_categorical(attr.domain, cell))
                else:
                    row.append(float(cell))
            rows.append(row)
    return Table.from_rows(relation, rows)


def save_bundle(directory: str, table: Table, dcs=()) -> None:
    """Write ``schema.json``, ``data.csv``, and (if any DCs) ``dcs.txt``."""
    os.makedirs(directory, exist_ok=True)
    save_relation(table.relation, os.path.join(directory, SCHEMA_FILE))
    table.to_csv(os.path.join(directory, DATA_FILE))
    dcs = list(dcs)
    if dcs:
        save_dcs(dcs, os.path.join(directory, DCS_FILE),
                 relation=table.relation)


def load_bundle(directory: str) -> DatasetBundle:
    """Load a bundle directory written by :func:`save_bundle`."""
    schema_path = os.path.join(directory, SCHEMA_FILE)
    data_path = os.path.join(directory, DATA_FILE)
    if not os.path.exists(schema_path):
        raise FileNotFoundError(f"missing {SCHEMA_FILE} in {directory}")
    if not os.path.exists(data_path):
        raise FileNotFoundError(f"missing {DATA_FILE} in {directory}")
    relation = load_relation(schema_path)
    table = read_table_csv(relation, data_path)
    dcs_path = os.path.join(directory, DCS_FILE)
    dcs = load_dcs(dcs_path, relation=relation) if os.path.exists(dcs_path) \
        else []
    return DatasetBundle(relation=relation, table=table, dcs=dcs)
