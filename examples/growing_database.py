"""Synthetic releases for a growing database (paper §3.2).

The paper's operational policy for input changes: re-run everything if
the DCs change the schema sequence; re-train if the data distribution
shifts; otherwise reuse the learned model and just re-sample (free —
sampling is post-processing).  :class:`GrowingSynthesizer` implements
the policy with DP shift detection; this example walks all three paths:

1. initial publish,
2. the table grows 25% with same-distribution rows   -> resample,
3. a burst of anomalous rows shifts the distribution -> retrain.

Run:  python examples/growing_database.py
"""

import numpy as np

from repro.core.growing import GrowingSynthesizer
from repro.datasets import load
from repro.privacy import PrivacyLedger


def cap_iterations(params) -> None:
    params.iterations = min(params.iterations, 40)


def grow(table, extra: int, seed: int):
    """Original rows plus a bootstrap of `extra` same-population rows."""
    rng = np.random.default_rng(seed)
    new_rows = rng.integers(0, table.n, size=extra)
    return table.take(np.concatenate([np.arange(table.n), new_rows]))


def shift(table, seed: int):
    """The grown table plus a burst of distribution-shifting rows."""
    out = grow(table, extra=table.n // 4, seed=seed)
    burst = (2 * out.n) // 3
    out.columns["o_totalprice"][-burst:] = \
        out.relation["o_totalprice"].domain.high
    out.columns["o_orderstatus"][-burst:] = 0
    out.columns["o_orderdate"][-burst:] = \
        out.relation["o_orderdate"].domain.low
    return out


def main() -> None:
    dataset = load("tpch", n=400, seed=0)
    ledger = PrivacyLedger(delta=1e-6)
    synthesizer = GrowingSynthesizer(
        dataset.relation, dataset.dcs, epsilon=1.0, delta=1e-6,
        fingerprint_epsilon=8.0, shift_threshold=0.15, ledger=ledger,
        seed=0, params_override=cap_iterations)

    decision = synthesizer.publish(dataset.table)
    print(f"v1 publish : action={decision.action:10s} "
          f"spent={decision.epsilon_spent:.2f}  "
          f"rows={decision.result.table.n}")

    grown = grow(dataset.table, extra=100, seed=11)
    decision = synthesizer.update(grown)
    print(f"v2 grown   : action={decision.action:10s} "
          f"spent={decision.epsilon_spent:.2f}  "
          f"shift={decision.shift:.3f}  rows={decision.result.table.n}")

    shifted = shift(dataset.table, seed=12)
    decision = synthesizer.update(shifted)
    print(f"v3 shifted : action={decision.action:10s} "
          f"spent={decision.epsilon_spent:.2f}  "
          f"shift={decision.shift:.3f}  rows={decision.result.table.n}")

    print(f"\ntotal privacy spent across the release history: "
          f"epsilon={ledger.spent_epsilon():.3f} over {len(ledger)} entries")


if __name__ == "__main__":
    main()
