"""Census release: Kamino vs an i.i.d. baseline on the Adult workload.

Reproduces the paper's motivating scenario (Example 1): a census-style
table with a functional dependency (edu -> edu_num) and a monotone
capital-gain/loss constraint.  Synthesizes with both Kamino and
PrivBayes at the same budget, then reports:

* constraint violations (the paper's Metric I / Table 2),
* downstream classification quality on the income attribute
  (Metric II / Figure 3).

Run:  python examples/adult_census.py [n_rows]
"""

import sys

from repro.baselines import PrivBayes
from repro.constraints import violating_pair_percentage
from repro.core import Kamino
from repro.datasets import load
from repro.evaluation import train_on_synthetic_test_on_true


def main(n: int = 800) -> None:
    dataset = load("adult", n=n, seed=1)
    epsilon, delta = 1.0, 1e-6

    def cap(params):
        params.iterations = min(params.iterations, 60)

    kamino = Kamino(dataset.relation, dataset.dcs, epsilon, delta, seed=0,
                    params_override=cap)
    kamino_out = kamino.fit_sample(dataset.table).table
    privbayes_out = PrivBayes(epsilon, delta, seed=0).fit_sample(
        dataset.table)

    print(f"Adult-style workload: n={n}, epsilon={epsilon}")
    print("\nMetric I - % violating tuple pairs")
    print(f"{'DC':10s} {'truth':>8s} {'Kamino':>8s} {'PrivBayes':>10s}")
    for dc in dataset.dcs:
        print(f"{dc.name:10s} "
              f"{violating_pair_percentage(dc, dataset.table):8.3f} "
              f"{violating_pair_percentage(dc, kamino_out):8.3f} "
              f"{violating_pair_percentage(dc, privbayes_out):10.3f}")

    print("\nMetric II - predicting income (9-classifier panel mean)")
    for name, synth in [("Truth", dataset.table), ("Kamino", kamino_out),
                        ("PrivBayes", privbayes_out)]:
        scores = train_on_synthetic_test_on_true(dataset.table, synth,
                                                 "income")
        print(f"{name:10s} accuracy={scores['accuracy']:.3f} "
              f"f1={scores['f1']:.3f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 800)
