"""Run the paper's evaluation on your own workload in one call.

`compare_methods` synthesizes with any subset of the five methods and
evaluates the paper's three metrics, returning a Markdown-renderable
report.  Here: Kamino vs PrivBayes vs NIST on the TPC-H mirror, with
the classifier panel enabled, written to ``comparison.md``.

Run:  python examples/method_comparison.py
"""

from repro.datasets import load
from repro.evaluation import compare_methods


def main() -> None:
    dataset = load("tpch", n=400, seed=0)
    print(dataset.summary())
    collection = compare_methods(
        dataset,
        methods=["PrivBayes", "NIST", "Kamino"],
        epsilon=1.0,
        seed=0,
        classify=True,
        classify_targets=["c_mktsegment", "o_orderstatus"],
        max_marginal_sets=10,
    )
    print()
    print(collection.to_markdown())
    collection.save("comparison.md")
    print("(also written to comparison.md)")


if __name__ == "__main__":
    main()
