"""Privacy budget accounting across repeated releases.

A data owner rarely synthesizes once: models get retrained, new
epsilon settings get tried, marginals get published on the side.  Each
release composes.  This example runs two Kamino syntheses and one
standalone noisy histogram against the same private table, records all
three in a :class:`~repro.privacy.ledger.PrivacyLedger`, and shows that
RDP composition is much tighter than adding epsilons.

The first synthesis is also traced with a ``RunTrace``: the fit-phase
breakdown shows where the budget-consuming wall-clock goes (the same
telemetry `repro-kamino fit --trace out.json` writes as JSON).

Run:  python examples/budget_ledger.py
"""

import numpy as np

from repro.core import Kamino
from repro.datasets import load
from repro.obs import RunTrace
from repro.privacy import GaussianMechanism, PrivacyLedger

BUDGET = 5.0
DELTA = 1e-6


def cap_iterations(params) -> None:
    params.iterations = min(params.iterations, 40)


def main() -> None:
    dataset = load("adult", n=500, seed=0)
    ledger = PrivacyLedger(delta=DELTA, budget_epsilon=BUDGET)

    # Release 1: a synthesis at epsilon = 1, via the staged API with a
    # trace attached — only fit() touches the budget; the draw (and the
    # telemetry) are free post-processing.
    trace = RunTrace(label="release-1 eps=1")
    kamino = Kamino(dataset.relation, dataset.dcs, epsilon=1.0, delta=DELTA,
                    seed=0, params_override=cap_iterations)
    fitted = kamino.fit(dataset.table, trace=trace)
    fitted.sample(trace=trace)
    ledger.record_kamino("synthesis eps=1", fitted.params)
    print(f"after release 1: spent={ledger.spent_epsilon():.3f}, "
          f"remaining={ledger.remaining():.3f}")

    # Release 2: a re-run at a looser budget (e.g. after a bug fix).
    kamino = Kamino(dataset.relation, dataset.dcs, epsilon=2.0, delta=DELTA,
                    seed=1, params_override=cap_iterations)
    second = kamino.fit_sample(dataset.table)
    ledger.record_kamino("synthesis eps=2", second.params)
    print(f"after release 2: spent={ledger.spent_epsilon():.3f}, "
          f"remaining={ledger.remaining():.3f}")

    # Release 3: a side-channel noisy histogram of one attribute.
    rng = np.random.default_rng(7)
    sigma = 4.0
    counts = np.bincount(dataset.table.column("income").astype(np.int64),
                         minlength=2).astype(float)
    noisy = GaussianMechanism(np.sqrt(2.0), sigma, rng).release(counts)
    ledger.record_gaussian("income histogram", sigma=sigma)
    print(f"noisy income counts: {np.round(noisy, 1)}")

    print()
    print(ledger.summary())
    naive = sum(
        __import__("repro.privacy", fromlist=["rdp_to_epsilon"])
        .rdp_to_epsilon(lambda a, e=e: e.rdp[ledger.alphas.index(a)], DELTA,
                        ledger.alphas)[0]
        for e in ledger.entries)
    print(f"\nnaive epsilon sum : {naive:.3f}")
    print(f"RDP composition   : {ledger.spent_epsilon():.3f} "
          f"(the ledger's advantage)")

    # Where release 1's wall-clock went: fit phases (sequencing /
    # params / dp_sgd / weights) plus the free draw, per column.
    print()
    print(trace.summary())


if __name__ == "__main__":
    main()
