"""TPC-H workload: key/foreign-key preservation + the hard-FD lookup
optimization (§7.3.6).

The denormalised Orders-Customer-Nation join carries four hard FDs
induced by the original key constraints.  Synthetic data violating them
cannot be re-normalised back into valid Customer/Nation tables — the
reason the paper's Table 2 highlights TPC-H.  This script:

1. runs Kamino with and without the hard-FD lookup fast path and
   compares wall-clock time,
2. verifies both outputs keep all four FDs,
3. re-normalises the synthetic join back into a Customer dimension to
   show round-tripping works.

Run:  python examples/tpch_keys.py [n_rows]
"""

import sys
import time

import numpy as np

from repro.constraints import count_violations
from repro.core import Kamino
from repro.datasets import load


def renormalise(table) -> dict:
    """Rebuild the customer dimension from the synthetic join; raises if
    any customer maps to two nations/segments (cannot happen when the
    FDs hold)."""
    customers: dict = {}
    cust = table.column("c_custkey")
    nation = table.column("c_nationkey")
    segment = table.column("c_mktsegment")
    for c, nk, seg in zip(cust, nation, segment):
        row = (int(nk), int(seg))
        if customers.setdefault(int(c), row) != row:
            raise AssertionError(f"customer {c} is inconsistent")
    return customers


def main(n: int = 600) -> None:
    dataset = load("tpch", n=n, seed=3)

    def cap(params):
        params.iterations = min(params.iterations, 50)

    results = {}
    for label, fd_lookup in [("generic", False), ("fd-lookup", True)]:
        kamino = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                        delta=1e-6, seed=0, use_fd_lookup=fd_lookup,
                        params_override=cap)
        start = time.perf_counter()
        results[label] = kamino.fit_sample(dataset.table)
        elapsed = time.perf_counter() - start
        print(f"{label:10s}: {elapsed:6.2f}s "
              f"(sampling {results[label].timings['Sam.']:.2f}s)")

    for label, result in results.items():
        bad = sum(count_violations(dc, result.table)
                  for dc in dataset.dcs)
        print(f"{label:10s}: total hard-FD violations = {bad}")

    customers = renormalise(results["fd-lookup"].table)
    orders_per_cust = np.bincount(
        results["fd-lookup"].table.column("c_custkey").astype(int))
    print(f"re-normalised customer dimension: {len(customers)} customers, "
          f"max orders/customer = {orders_per_cust.max()}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 600)
