"""Quickstart: synthesize a tiny constrained table with Kamino.

Builds a 3-attribute schema with one functional dependency, generates a
private "true" instance, runs the end-to-end Kamino pipeline at
(epsilon=1.5, delta=1e-6), and verifies the synthetic data keeps the
constraint while tracking the marginals.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.constraints import parse_dc, violating_pair_percentage
from repro.core import Kamino
from repro.evaluation import total_variation_distance
from repro.schema import (
    Attribute, CategoricalDomain, NumericalDomain, Relation, Table,
)


def make_private_data(n: int = 600, seed: int = 7) -> Table:
    """A toy HR table: department determines floor, salary rises with
    seniority."""
    rng = np.random.default_rng(seed)
    relation = Relation([
        Attribute("dept", CategoricalDomain(
            ["sales", "eng", "hr", "legal"])),
        Attribute("floor", NumericalDomain(1, 8, integer=True, bins=8)),
        Attribute("seniority", NumericalDomain(0, 30, integer=True,
                                               bins=16)),
    ])
    dept = rng.integers(0, 4, n)
    floor = dept * 2 + 1.0                      # FD: dept -> floor
    seniority = np.clip(rng.exponential(6.0, n), 0, 30).round()
    return Table(relation, {"dept": dept, "floor": floor,
                            "seniority": seniority})


def main() -> None:
    table = make_private_data()
    fd = parse_dc("not(ti.dept == tj.dept and ti.floor != tj.floor)",
                  name="dept_floor_fd", hard=True, relation=table.relation)

    kamino = Kamino(table.relation, [fd], epsilon=1.5, delta=1e-6, seed=0)
    result = kamino.fit_sample(table)

    print("schema sequence :", result.sequence)
    print(f"privacy spent   : epsilon={result.params.achieved_epsilon:.3f} "
          f"(budget 1.5), alpha={result.params.best_alpha}")
    print(f"FD violations   : truth "
          f"{violating_pair_percentage(fd, table):.3f}%  synthetic "
          f"{violating_pair_percentage(fd, result.table):.3f}%")
    for attr in table.relation.names:
        dist = total_variation_distance(table, result.table, (attr,))
        print(f"1-way TVD {attr:10s}: {dist:.3f}")
    print("phase timings   :",
          {k: round(v, 2) for k, v in result.timings.items()})


if __name__ == "__main__":
    main()
