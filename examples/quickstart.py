"""Quickstart: synthesize a tiny constrained table with Kamino.

Builds a 3-attribute schema with one functional dependency, generates a
private "true" instance, and walks the staged API:

1. ``KaminoConfig`` collects every pipeline knob, validated once;
2. ``Kamino.fit`` runs the budget-consuming phases (sequencing,
   parameter search, DP-SGD training, DC-weight learning) exactly once
   and returns a ``FittedKamino``;
3. ``FittedKamino.sample`` draws synthetic instances — any size, any
   seed, as many as wanted — as free post-processing, on the
   block-scheduled vectorized engine (``engine="blocked"``, the
   default) whose counter-based per-cell rng makes every draw
   deterministic per seed and lets ``workers=k`` shard it across
   threads bit-identically;
4. ``engine="row"`` keeps the legacy per-row sampler for exact replay
   of pre-engine outputs;
5. ``save``/``load`` persist the fitted model (including the engine
   choice and rng spec) so later draws never touch the private data
   again;
6. a ``RunTrace`` records where the time went — fit phases, per-column
   sampling wall-clock, engine lanes, index probe counts — without
   changing a single drawn cell (the CLI exposes the same telemetry as
   ``repro-kamino fit/sample/synthesize --trace out.json``).

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro.constraints import parse_dc, violating_pair_percentage
from repro.core import FittedKamino, Kamino, KaminoConfig
from repro.evaluation import total_variation_distance
from repro.obs import RunTrace
from repro.schema import (
    Attribute, CategoricalDomain, NumericalDomain, Relation, Table,
)


def make_private_data(n: int = 600, seed: int = 7) -> Table:
    """A toy HR table: department determines floor, salary rises with
    seniority."""
    rng = np.random.default_rng(seed)
    relation = Relation([
        Attribute("dept", CategoricalDomain(
            ["sales", "eng", "hr", "legal"])),
        Attribute("floor", NumericalDomain(1, 8, integer=True, bins=8)),
        Attribute("seniority", NumericalDomain(0, 30, integer=True,
                                               bins=16)),
    ])
    dept = rng.integers(0, 4, n)
    floor = dept * 2 + 1.0                      # FD: dept -> floor
    seniority = np.clip(rng.exponential(6.0, n), 0, 30).round()
    return Table(relation, {"dept": dept, "floor": floor,
                            "seniority": seniority})


def main() -> None:
    table = make_private_data()
    fd = parse_dc("not(ti.dept == tj.dept and ti.floor != tj.floor)",
                  name="dept_floor_fd", hard=True, relation=table.relation)

    # Train once: everything that touches the private table (and the
    # privacy budget) happens inside fit().  The RunTrace collects
    # phase/column telemetry along the way — tracing is pure
    # observation, every output stays bit-identical to an untraced run.
    trace = RunTrace(label="quickstart")
    config = KaminoConfig(epsilon=1.5, delta=1e-6, seed=0)
    fitted = Kamino(table.relation, [fd], config=config).fit(table,
                                                             trace=trace)

    print("schema sequence :", fitted.sequence)
    print(f"privacy spent   : epsilon={fitted.params.achieved_epsilon:.3f} "
          f"(budget {config.epsilon}), alpha={fitted.params.best_alpha}")

    # Serve many: draws are free post-processing.  By default they run
    # on the block-scheduled engine (KaminoConfig.engine="blocked"):
    # conflict-free row blocks are scored and drawn vectorized, and all
    # randomness comes from counter-based per-cell streams, so a draw
    # is a pure function of (model, DCs, n, seed) — block size and
    # worker count never change a single cell.  That determinism is
    # what makes `workers=` safe: unconstrained column passes shard
    # across threads and stitch bit-identically to workers=1.
    result = fitted.sample(trace=trace)
    extra = fitted.sample(n=2000, seed=1, workers=4)
    assert_same = fitted.sample(n=2000, seed=1)  # workers=1, same draw
    assert all((extra.table.column(a) == assert_same.table.column(a)).all()
               for a in table.relation.names)
    print(f"draws           : default n={result.table.n}, "
          f"seeded n={extra.table.n} (workers=4, bit-identical to "
          f"workers=1) — one training run, zero extra budget")

    # engine="row" keeps the legacy per-row sampler: pick it (per draw
    # or via KaminoConfig) when you must replay outputs produced before
    # the blocked engine existed bit for bit — e.g. regression-pinned
    # synthetic datasets.  Both engines sample the same distribution;
    # models saved by older releases load with engine="row"
    # automatically so their historical draws still reproduce.
    legacy = fitted.sample(n=500, seed=1, engine="row")
    print(f"row engine      : n={legacy.table.n} (legacy bit-exact "
          f"stream, sequential)")

    print(f"FD violations   : truth "
          f"{violating_pair_percentage(fd, table):.3f}%  synthetic "
          f"{violating_pair_percentage(fd, result.table):.3f}%  "
          f"large draw {violating_pair_percentage(fd, extra.table):.3f}%")
    for attr in table.relation.names:
        dist = total_variation_distance(table, result.table, (attr,))
        print(f"1-way TVD {attr:10s}: {dist:.3f}")
    print("phase timings   :",
          {k: round(v, 2) for k, v in result.timings.items()})

    # Persist the artifact: a later process (or another machine) can
    # keep sampling without the private data or any budget.
    path = os.path.join(tempfile.mkdtemp(prefix="kamino_"), "model.npz")
    fitted.save(path)
    reloaded = FittedKamino.load(path, table.relation, [fd])
    again = reloaded.sample(n=500, seed=2)
    print(f"round trip      : saved {os.path.basename(path)}, reloaded, "
          f"drew n={again.table.n} "
          f"(FD {violating_pair_percentage(fd, again.table):.3f}%)")

    # Where did the time go?  The trace spans the fit and the first
    # draw: phase shares, per-column lanes (unconstrained vs fd-lane),
    # block counts, and violation-index probe volume.  trace.save(path)
    # writes the same data as stable-keyed JSON.
    print()
    print(trace.summary())


if __name__ == "__main__":
    main()
