"""Tax workload: large-domain fallback + marginal-query accuracy.

The Tax schema has a ~2000-value zip attribute whose conditional cannot
be learned from a bounded sample, so Kamino's §4.3 fallback releases a
noisy histogram for it and samples it independently — while the hard
FDs (zip -> city, zip -> state, areacode -> state) and the per-state
salary/rate monotonicity are still enforced by the constraint-aware
sampler.

The script reports Metric I (violations) and Metric III (1-way and
2-way marginal total variation distances).

Run:  python examples/tax_marginals.py [n_rows]
"""

import sys

import numpy as np

from repro.constraints import violating_pair_percentage
from repro.core import Kamino
from repro.datasets import load
from repro.evaluation import marginal_distances


def main(n: int = 600) -> None:
    dataset = load("tax", n=n, seed=2)

    def cap(params):
        params.iterations = min(params.iterations, 50)

    kamino = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                    delta=1e-6, seed=0, large_domain_threshold=1000,
                    params_override=cap)
    result = kamino.fit_sample(dataset.table)

    independent = sorted(result.model.independent)
    print(f"Tax-style workload: n={n}")
    print(f"large-domain fallback attributes: {independent}")

    print("\nMetric I - % violating tuple pairs")
    for dc in dataset.dcs:
        print(f"{dc.name:8s} truth="
              f"{violating_pair_percentage(dc, dataset.table):.3f}  "
              f"kamino={violating_pair_percentage(dc, result.table):.3f}")

    for alpha in (1, 2):
        dists = marginal_distances(dataset.table, result.table,
                                   alpha=alpha, max_sets=10, seed=0)
        values = [d for _, d in dists]
        print(f"\nMetric III - {alpha}-way marginals "
              f"(mean {np.mean(values):.3f}, max {np.max(values):.3f})")
        for attrs, dist in sorted(dists, key=lambda x: -x[1])[:3]:
            print(f"  worst: {'x'.join(attrs):30s} {dist:.3f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 600)
