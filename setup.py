"""Setup shim: enables `pip install -e .` in offline environments where
the `wheel` package (needed by the PEP 517 editable path) is absent."""
from setuptools import setup

setup()
